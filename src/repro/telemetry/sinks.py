"""Trace sinks: where emitted events go.

Three implementations cover the use cases:

* :class:`NullSink` — the default; every operation is a no-op, so traced
  code paths cost one attribute lookup and a predicate when tracing is
  off, and traced runs stay bit-identical to untraced ones.
* :class:`RingBufferSink` — a bounded in-memory buffer for tests,
  notebooks, and live introspection.
* :class:`JsonlSink` — an append-only JSONL journal.  Events are
  buffered and written at :meth:`flush`, **sorted by**
  :func:`~repro.telemetry.events.sort_key` ``(step, phase,
  candidate_index, seq)`` so parallel and serial runs emit identical
  journals; a checkpoint flush additionally ``fsync``\\ s so the journal
  on disk is never behind a checkpoint that references it.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Any, Deque, List, Tuple, Union

from repro.telemetry.events import (
    TraceEventError,
    decode_event,
    encode_event,
    sort_key,
)

__all__ = [
    "Sink",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "JournalLockedError",
    "read_journal",
]


class Sink:
    """Sink interface: ``record`` buffers, ``flush`` persists."""

    def record(self, seq: int, event: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def flush(self, checkpoint: bool = False) -> None:
        """Persist buffered events; ``checkpoint=True`` makes the write
        durable (fsync) where the medium supports it."""

    def close(self) -> None:
        self.flush()


class NullSink(Sink):
    """Discard everything (the default sink)."""

    def record(self, seq: int, event: Any) -> None:
        pass


class RingBufferSink(Sink):
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        self._buffer: Deque[Tuple[int, Any]] = deque(maxlen=capacity)

    def record(self, seq: int, event: Any) -> None:
        self._buffer.append((seq, event))

    def events(self) -> List[Any]:
        """Buffered events in canonical journal order."""
        return [
            event
            for seq, event in sorted(
                self._buffer, key=lambda item: sort_key(item[0], item[1])
            )
        ]

    def __len__(self) -> int:
        return len(self._buffer)


class JournalLockedError(RuntimeError):
    """Another live process holds the journal's exclusive lock."""


class JsonlSink(Sink):
    """Append-only JSONL journal with deterministic flush order.

    A journal holds exactly **one campaign**: the resume-truncation
    contract below rewinds the *file* to the checkpoint's event count,
    which only makes sense when every record in the file belongs to the
    resuming campaign.  Anything running several campaigns at once (the
    campaign service, concurrent CLI invocations) must route each one to
    its own journal path — the service keys journals by campaign id —
    and can pass ``exclusive=True`` to turn an accidental collision into
    an immediate :class:`JournalLockedError` instead of interleaved or
    truncated records.

    Args:
        path: Journal file; created (or appended to) lazily on first
            flush.
        resume_events: When resuming a checkpointed campaign, the number
            of journal events the checkpoint covers.  The existing file
            is truncated to exactly that many records — events flushed
            after the last checkpoint belong to an attempt that never
            completed and will be re-emitted by the resumed run.
        exclusive: Take a ``<path>.lock`` pidfile for the sink's
            lifetime.  A lock held by a live process raises
            :class:`JournalLockedError`; a stale lock (its pid is dead —
            e.g. the previous service process was SIGKILLed) is stolen.
            Released by :meth:`close`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        resume_events: int = None,
        exclusive: bool = False,
    ):
        self.path = str(path)
        self._buffer: List[Tuple[int, Any]] = []
        self.events_written = 0
        self._lock_path = self.path + ".lock" if exclusive else None
        if self._lock_path is not None:
            self._acquire_lock()
        if resume_events is not None:
            self._truncate_to(resume_events)

    def _acquire_lock(self) -> None:
        while True:
            try:
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                holder = self._lock_holder()
                if holder is not None:
                    raise JournalLockedError(
                        f"journal {self.path!r} is locked by live pid "
                        f"{holder}; one campaign per journal file"
                    ) from None
                # Stale (dead or unreadable holder): steal and retry so a
                # concurrent stealer still funnels through O_EXCL.
                try:
                    os.unlink(self._lock_path)
                except FileNotFoundError:
                    pass
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            return

    def _lock_holder(self) -> int:
        """The live pid holding the lock, or None when the lock is stale."""
        try:
            with open(self._lock_path) as handle:
                pid = int(handle.read().strip())
        except (OSError, ValueError):
            return None
        # Our own pid counts as live too: a second sink on the same
        # journal within one process is exactly the collision to reject.
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return None
        except PermissionError:
            return pid  # alive, owned by someone else
        return pid

    def _release_lock(self) -> None:
        if self._lock_path is None:
            return
        try:
            os.unlink(self._lock_path)
        except FileNotFoundError:
            pass
        self._lock_path = None

    def close(self) -> None:
        try:
            self.flush()
        finally:
            self._release_lock()

    def _truncate_to(self, count: int) -> None:
        try:
            with open(self.path) as handle:
                lines = handle.read().splitlines()
        except FileNotFoundError:
            raise ValueError(
                f"cannot resume: journal {self.path!r} does not exist"
            ) from None
        if len(lines) < count:
            raise ValueError(
                f"cannot resume: journal {self.path!r} holds {len(lines)} "
                f"events but the checkpoint covers {count}"
            )
        with open(self.path, "w") as handle:
            for line in lines[:count]:
                handle.write(line + "\n")
        self.events_written = count

    def record(self, seq: int, event: Any) -> None:
        self._buffer.append((seq, event))

    def flush(self, checkpoint: bool = False) -> None:
        if not self._buffer and not checkpoint:
            return
        self._buffer.sort(key=lambda item: sort_key(item[0], item[1]))
        with open(self.path, "a") as handle:
            for _, event in self._buffer:
                handle.write(json.dumps(encode_event(event)) + "\n")
            handle.flush()
            if checkpoint:
                os.fsync(handle.fileno())
        self.events_written += len(self._buffer)
        self._buffer.clear()


def read_journal(path: Union[str, Path]) -> List[Any]:
    """Decode every event of a JSONL journal, in file order.

    Raises:
        TraceEventError: on a line that is not valid JSON or an
            undecodable record.
    """
    events: List[Any] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceEventError(
                    f"{path}:{number}: not valid JSON: {exc}"
                ) from exc
            events.append(decode_event(record))
    return events
