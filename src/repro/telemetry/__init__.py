"""Telemetry: structured DSE traces, explanation reports, checkpoints.

The observability subsystem of the reproduction (see
``docs/observability.md``):

* :mod:`.events` — typed, schema-versioned trace events with a lossless
  JSON codec and the canonical ``(step, candidate_index)`` ordering;
* :mod:`.sinks` — null (default), in-memory ring buffer, and append-only
  JSONL journal sinks with deterministic sorted flush;
* :mod:`.tracer` — the :class:`Tracer` (event emission + span timers)
  and the shared disabled ``NULL_TRACER``;
* :mod:`.checkpoint` — atomic crash-safe campaign snapshots and
  journal-replay verification for ``ExplainableDSE.run(resume_from=...)``;
* :mod:`.report` — per-step Markdown/JSON explanation narratives
  (``python -m repro report <journal.jsonl>``).
"""

from repro.telemetry.checkpoint import (
    CampaignCheckpoint,
    CheckpointError,
    default_checkpoint_path,
    load_checkpoint,
    save_checkpoint,
    verify_against_journal,
)
from repro.telemetry.events import (
    SCHEMA_VERSION,
    AskIssued,
    BottleneckIdentified,
    BudgetExhausted,
    CandidateEvaluated,
    CandidateFailed,
    CandidateGenerated,
    IncumbentUpdated,
    MitigationPredicted,
    RunSummary,
    StepStarted,
    TellRecorded,
    TraceEventError,
    decode_event,
    deterministic_perf_counters,
    encode_event,
)
from repro.telemetry.report import (
    load_journal,
    render_json,
    render_markdown,
    render_report,
)
from repro.telemetry.sinks import (
    JsonlSink,
    NullSink,
    RingBufferSink,
    read_journal,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = [
    "SCHEMA_VERSION",
    "AskIssued",
    "BottleneckIdentified",
    "BudgetExhausted",
    "CampaignCheckpoint",
    "CandidateEvaluated",
    "CandidateFailed",
    "CandidateGenerated",
    "CheckpointError",
    "IncumbentUpdated",
    "JsonlSink",
    "MitigationPredicted",
    "NULL_TRACER",
    "NullSink",
    "RingBufferSink",
    "RunSummary",
    "StepStarted",
    "TellRecorded",
    "TraceEventError",
    "Tracer",
    "decode_event",
    "default_checkpoint_path",
    "deterministic_perf_counters",
    "encode_event",
    "load_checkpoint",
    "load_journal",
    "read_journal",
    "render_json",
    "render_markdown",
    "render_report",
    "save_checkpoint",
    "verify_against_journal",
]
