"""Crash-safe campaign checkpoints for DSE runs.

A :class:`CampaignCheckpoint` snapshots everything
:meth:`~repro.core.dse.explainable.ExplainableDSE.run` needs to continue
mid-campaign: the incumbent, the consumed budget, the acquisition
bookkeeping (tried points, exhausted parameters, patience counter), the
full trial/explanation history, the RNG state (``None`` for the
deterministic core loop), a mapping-cache manifest, and the journal
position the snapshot covers.

Snapshots are written atomically (write to a temp file in the same
directory, ``fsync``, ``os.replace``), so a campaign killed at any
instant — including mid-write — leaves either the previous or the new
checkpoint intact, never a torn file.  :func:`verify_against_journal`
replays the trace journal against a snapshot before a resume, catching
mismatched or stale checkpoint/journal pairs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.telemetry.events import (
    CandidateEvaluated,
    CandidateFailed,
    IncumbentUpdated,
    TraceEventError,
)
from repro.telemetry.sinks import read_journal

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CampaignCheckpoint",
    "default_checkpoint_path",
    "save_checkpoint",
    "load_checkpoint",
    "verify_against_journal",
]

#: Version of the checkpoint layout; bump on incompatible change.
CHECKPOINT_SCHEMA = 1


class CheckpointError(ValueError):
    """A checkpoint is missing, corrupt, or inconsistent with its journal."""


@dataclass
class CampaignCheckpoint:
    """Resumable snapshot of one DSE campaign.

    Attributes:
        model / objective / max_evaluations: Campaign identity; resume
            validates ``model`` and ``objective`` against the DSE it is
            applied to.
        consumed: Evaluations already spent (budget accounting).
        attempt: Last *completed* acquisition attempt.
        attempts_without_improvement: Patience counter at snapshot time.
        finished: True when the campaign terminated (patience or
            mitigation exhaustion); resuming returns the stored outcome
            without exploring further.
        current_point: The incumbent design point.
        exhausted: Parameters whose mitigation direction is exhausted.
        tried_keys: Canonical design-space index keys of every point
            acquired so far (resume requires the same design space).
        trials / explanations: Full run history, serialized like
            :mod:`repro.core.dse.serialization`.
        rng_state: JSON-able RNG state for stochastic loops (``None``
            for the deterministic core loop).
        mapping_cache_manifest: Deterministic counters of the layer-level
            mapping cache at snapshot time (informational).
        journal_events: Number of journal events this snapshot covers;
            the resumed journal is truncated to it and verification
            replays exactly that prefix.
    """

    model: str
    objective: str
    max_evaluations: int
    consumed: int
    attempt: int
    attempts_without_improvement: int
    finished: bool
    current_point: Dict[str, Any]
    exhausted: List[str]
    tried_keys: List[List[Any]]
    trials: List[Dict[str, Any]]
    explanations: List[str]
    rng_state: Optional[Any] = None
    mapping_cache_manifest: Dict[str, Any] = field(default_factory=dict)
    journal_events: int = 0
    schema: int = CHECKPOINT_SCHEMA


def default_checkpoint_path(trace_path: Union[str, Path]) -> str:
    """The checkpoint file paired with a trace journal path."""
    return str(trace_path) + ".ckpt"


def save_checkpoint(
    checkpoint: CampaignCheckpoint, path: Union[str, Path]
) -> None:
    """Atomically persist a checkpoint (write-temp, fsync, rename)."""
    path = str(path)
    directory = os.path.dirname(os.path.abspath(path))
    payload = json.dumps(dataclasses.asdict(checkpoint), indent=1)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path: Union[str, Path]) -> CampaignCheckpoint:
    """Load and validate a checkpoint file.

    Raises:
        CheckpointError: when the file is missing, not JSON, or not a
            compatible checkpoint schema.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path!r}") from None
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt checkpoint {path!r}: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"unsupported checkpoint schema {data.get('schema')!r} in "
            f"{path!r}; expected {CHECKPOINT_SCHEMA}"
        )
    known = {f.name for f in dataclasses.fields(CampaignCheckpoint)}
    try:
        return CampaignCheckpoint(
            **{k: v for k, v in data.items() if k in known}
        )
    except TypeError as exc:
        raise CheckpointError(
            f"incomplete checkpoint {path!r}: {exc}"
        ) from exc


def verify_against_journal(
    checkpoint: CampaignCheckpoint, journal_path: Union[str, Path]
) -> None:
    """Replay a journal prefix to confirm it produced this checkpoint.

    Checks that the journal holds at least ``journal_events`` records,
    that the number of candidate evaluations in that prefix matches the
    checkpoint's trial count, and that the last incumbent the journal
    records equals the checkpoint's ``current_point``.

    Raises:
        CheckpointError: on any mismatch or an undecodable journal.
    """
    try:
        events = read_journal(journal_path)
    except FileNotFoundError:
        raise CheckpointError(
            f"checkpoint references journal {journal_path!r}, "
            "which does not exist"
        ) from None
    except (TraceEventError, ValueError) as exc:
        raise CheckpointError(
            f"journal {journal_path!r} is undecodable: {exc}"
        ) from exc
    if len(events) < checkpoint.journal_events:
        raise CheckpointError(
            f"journal {journal_path!r} holds {len(events)} events but the "
            f"checkpoint covers {checkpoint.journal_events}"
        )
    prefix = events[: checkpoint.journal_events]
    evaluated = [e for e in prefix if isinstance(e, CandidateEvaluated)]
    # Quarantined candidates (CandidateFailed) enter the trial ledger too.
    failed = [e for e in prefix if isinstance(e, CandidateFailed)]
    if len(evaluated) + len(failed) != len(checkpoint.trials):
        raise CheckpointError(
            f"journal prefix records {len(evaluated)} evaluations and "
            f"{len(failed)} quarantined candidates but the checkpoint "
            f"holds {len(checkpoint.trials)} trials"
        )
    incumbent: Optional[Dict[str, Any]] = None
    for event in prefix:
        if isinstance(event, IncumbentUpdated):
            incumbent = event.point
    if incumbent is None and evaluated:
        incumbent = evaluated[0].point  # initial point, pre-first-decision
    if incumbent is not None and dict(incumbent) != dict(
        checkpoint.current_point
    ):
        raise CheckpointError(
            "journal incumbent does not match the checkpoint snapshot "
            f"({incumbent!r} != {checkpoint.current_point!r})"
        )


def trials_to_dicts(trials) -> List[Dict[str, Any]]:
    """Serialize :class:`~repro.core.dse.result.TrialRecord` instances."""
    from repro.core.dse.serialization import _trial_to_dict

    return [_trial_to_dict(trial) for trial in trials]


def trials_from_dicts(data: List[Dict[str, Any]]):
    """Rebuild :class:`~repro.core.dse.result.TrialRecord` instances."""
    from repro.core.dse.serialization import _trial_from_dict

    return [_trial_from_dict(item) for item in data]
