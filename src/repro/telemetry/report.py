"""Render a trace journal into a per-step explanation report.

This is where the paper's Fig. 7/8-style narratives fall out of the
journal for free: every acquisition step names its critical cost, the
dominant bottleneck, the needed scaling factor, the predicted
(parameter, value) mitigations, and the update decision, e.g.::

    step 3: latency_ms dominated by conv3_x (41% of cost), scaling
    s=2.30; proposed l2_kb -> 512; 4 candidates evaluated; updated
    solution via l2_kb=512

Two renderers share one structured intermediate (:func:`render_json`):
``render_markdown`` for humans, ``render_json`` for dashboards and the
LLM-agent-style consumers of per-step rationales.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.telemetry.events import (
    BottleneckIdentified,
    BudgetExhausted,
    CandidateEvaluated,
    CandidateFailed,
    CandidateGenerated,
    IncumbentUpdated,
    MitigationPredicted,
    RunSummary,
    SCHEMA_VERSION,
    StepStarted,
)
from repro.telemetry.sinks import read_journal

__all__ = ["load_journal", "render_json", "render_markdown", "render_report"]

load_journal = read_journal


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _step_narrative(step: Dict[str, Any]) -> str:
    """One-sentence explanation of an acquisition step."""
    parts: List[str] = [f"step {step['step']}:"]
    critical = step.get("critical_cost")
    dominant = step.get("dominant") or []
    if critical:
        if step.get("kind") == "incompatibility":
            parts.append(
                "hardware cannot map "
                + ", ".join(d["name"] for d in dominant)
            )
        elif dominant:
            head = dominant[0]
            parts.append(
                f"{critical} dominated by {head['name']} "
                f"({head['share'] * 100:.0f}% of cost)"
            )
        else:
            parts.append(f"critical cost {critical}")
    if step.get("scaling") is not None:
        parts.append(f"scaling s={step['scaling']:.2f}")
    predictions = step.get("predictions") or []
    if predictions:
        parts.append(
            "proposed "
            + ", ".join(
                f"{p['parameter']} -> {_fmt(p['value'])}" for p in predictions
            )
        )
    candidates = step.get("candidates") or []
    if candidates:
        parts.append(f"{len(candidates)} candidate(s) evaluated")
    failed = step.get("failed") or []
    if failed:
        parts.append(f"{len(failed)} candidate(s) quarantined")
    decision = step.get("decision")
    if decision:
        parts.append(decision)
    return parts[0] + " " + "; ".join(parts[1:])


def render_json(events: List[Any]) -> Dict[str, Any]:
    """Fold a journal into a structured per-step report."""
    steps: Dict[int, Dict[str, Any]] = {}
    summary: Optional[Dict[str, Any]] = None
    budget: Optional[Dict[str, Any]] = None

    def step(number: int) -> Dict[str, Any]:
        return steps.setdefault(
            number,
            {
                "step": number,
                "predictions": [],
                "generated": [],
                "candidates": [],
                "failed": [],
            },
        )

    for event in events:
        if isinstance(event, StepStarted):
            entry = step(event.step)
            entry["incumbent"] = event.incumbent
            entry["incumbent_objective"] = event.objective
            entry["incumbent_feasible"] = event.feasible
        elif isinstance(event, BottleneckIdentified):
            entry = step(event.step)
            entry["critical_cost"] = event.critical_cost
            entry["kind"] = event.kind
            entry["model"] = event.model
            entry["dominant"] = event.dominant
            entry["scaling"] = event.scaling
            entry["detail"] = event.detail
        elif isinstance(event, MitigationPredicted):
            step(event.step)["predictions"].append(
                {
                    "parameter": event.parameter,
                    "value": event.value,
                    "subfunctions": event.subfunctions,
                }
            )
        elif isinstance(event, CandidateGenerated):
            step(event.step)["generated"].append(
                {
                    "candidate_index": event.candidate_index,
                    "parameter": event.parameter,
                    "value": event.value,
                    "reason": event.reason,
                }
            )
        elif isinstance(event, CandidateEvaluated):
            if event.step == 0:
                entry = step(0)
                entry["critical_cost"] = None
                entry["decision"] = "initial point evaluated"
            step(event.step)["candidates"].append(
                {
                    "candidate_index": event.candidate_index,
                    "point": event.point,
                    "costs": event.costs,
                    "feasible": event.feasible,
                    "mappable": event.mappable,
                    "note": event.note,
                }
            )
        elif isinstance(event, CandidateFailed):
            step(event.step)["failed"].append(
                {
                    "candidate_index": event.candidate_index,
                    "point": event.point,
                    "error": event.error,
                    "message": event.message,
                    "attempts": event.attempts,
                    "note": event.note,
                }
            )
        elif isinstance(event, IncumbentUpdated):
            entry = step(event.step)
            entry["decision"] = event.decision
            entry["improved"] = event.improved
            entry["new_incumbent"] = event.point
            entry["new_objective"] = event.objective
        elif isinstance(event, BudgetExhausted):
            budget = {
                "step": event.step,
                "consumed": event.consumed,
                "budget": event.budget,
            }
        elif isinstance(event, RunSummary):
            summary = {
                "technique": event.technique,
                "model": event.model,
                "evaluations": event.evaluations,
                "best_objective": event.best_objective,
                "found_feasible": event.found_feasible,
                "counters": event.counters,
            }

    ordered = [steps[k] for k in sorted(steps)]
    for entry in ordered:
        entry["narrative"] = _step_narrative(entry)
    return {
        "schema": SCHEMA_VERSION,
        "steps": ordered,
        "budget_exhausted": budget,
        "summary": summary,
    }


def render_markdown(events: List[Any]) -> str:
    """Render a journal as a Markdown explanation report."""
    report = render_json(events)
    lines: List[str] = ["# DSE explanation report", ""]
    summary = report["summary"]
    if summary:
        best = summary["best_objective"]
        lines += [
            f"**{summary['technique']}** on **{summary['model']}** — "
            f"{summary['evaluations']} evaluations, "
            + (
                f"best objective {_fmt(best)}"
                if summary["found_feasible"]
                else "no all-constraints-feasible design found"
            ),
            "",
        ]
    for entry in report["steps"]:
        if entry["step"] == 0:
            lines += [f"- {entry['narrative']}"]
            continue
        lines += [f"## Step {entry['step']}", "", entry["narrative"], ""]
        if entry.get("detail"):
            lines += [f"- analysis: {entry['detail']}"]
        for prediction in entry["predictions"]:
            subfunctions = ", ".join(prediction["subfunctions"][:3])
            lines += [
                f"- predicted: `{prediction['parameter']}` -> "
                f"`{_fmt(prediction['value'])}`"
                + (f" (from {subfunctions})" if subfunctions else "")
            ]
        for candidate in entry["candidates"]:
            verdict = (
                "feasible"
                if candidate["feasible"]
                else ("infeasible" if candidate["mappable"] else "unmappable")
            )
            lines += [
                f"- candidate {candidate['candidate_index']}: "
                f"{candidate['note']} — {verdict}"
            ]
        for failure in entry["failed"]:
            lines += [
                f"- candidate {failure['candidate_index']}: quarantined "
                f"after {failure['attempts']} attempt(s) — "
                f"{failure['error']}: {failure['message']}"
            ]
        if entry.get("decision"):
            lines += [f"- decision: {entry['decision']}"]
        lines += [""]
    budget = report["budget_exhausted"]
    if budget:
        lines += [
            f"_Budget exhausted after {budget['consumed']} of "
            f"{budget['budget']} evaluations._",
            "",
        ]
    return "\n".join(lines).rstrip() + "\n"


def render_report(
    journal_path: Union[str, Path], fmt: str = "md"
) -> str:
    """Load a journal and render it (``fmt``: ``"md"`` or ``"json"``)."""
    events = load_journal(journal_path)
    if fmt == "json":
        return json.dumps(render_json(events), indent=2) + "\n"
    if fmt == "md":
        return render_markdown(events)
    raise ValueError(f"unknown report format {fmt!r}; use 'md' or 'json'")
