"""The Tracer: event emission plus span timers.

A :class:`Tracer` fans emitted events out to its sinks and owns a
:class:`~repro.perf.instrumentation.StageTimers` for span timing.  Span
durations deliberately stay **out of the journal** (they are wall-clock
and would break the serial-vs-parallel journal identity); read them from
:attr:`Tracer.timings` or ``CostEvaluator.perf_summary()`` instead.

``NULL_TRACER`` (a tracer with no sinks) is the default everywhere, so
untraced runs pay one truthiness check per would-be event and remain
bit-identical to instrumented-but-disabled runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional

from repro.perf.instrumentation import StageTimers
from repro.telemetry.sinks import NullSink, RingBufferSink, Sink

__all__ = ["Tracer", "NULL_TRACER"]


class Tracer:
    """Emit trace events to pluggable sinks and time named spans.

    Args:
        *sinks: Destinations for emitted events.  With no (non-null)
            sinks the tracer is disabled: ``emit`` and ``span`` are
            no-ops.
        seq_start: First sequence number to assign; a resumed campaign
            passes the checkpoint's journal event count so ordering stays
            monotonic across the resume boundary.
    """

    def __init__(self, *sinks: Sink, seq_start: int = 0):
        self.sinks: List[Sink] = list(sinks)
        self.timings = StageTimers()
        self._seq = seq_start
        self.enabled = any(
            not isinstance(sink, NullSink) for sink in self.sinks
        )

    @property
    def events_emitted(self) -> int:
        """Total events emitted (== last assigned sequence number)."""
        return self._seq

    def emit(self, event: Any) -> None:
        if not self.enabled:
            return
        self._seq += 1
        for sink in self.sinks:
            sink.record(self._seq, event)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a named region into :attr:`timings` (not the journal)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.timings.record(name, time.perf_counter() - started)

    def events(self) -> List[Any]:
        """Events buffered in the first ring-buffer sink (else empty)."""
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink.events()
        return []

    def flush(self, checkpoint: bool = False) -> None:
        for sink in self.sinks:
            sink.flush(checkpoint=checkpoint)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


#: Shared disabled tracer; the default for every instrumented component.
NULL_TRACER = Tracer()
