"""Plain-text table / series rendering for experiment outputs.

The paper's figures are bar charts and convergence curves; the harness
prints the same rows and series as aligned text tables so results can be
compared without a plotting dependency.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence

__all__ = [
    "format_table",
    "format_cell",
    "format_series",
    "format_run_summary",
]


def format_cell(value, precision: int = 3) -> str:
    """Render one table cell; infeasible results become the paper's dash."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if not math.isfinite(value):
            return "-*"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Mapping[str, Mapping[str, object]],
    columns: Sequence[str],
    row_header: str = "technique",
    precision: int = 3,
) -> str:
    """Render ``rows[row][column]`` as an aligned text table."""
    header = [row_header] + list(columns)
    body: List[List[str]] = []
    for row_name, cells in rows.items():
        body.append(
            [row_name]
            + [format_cell(cells.get(col), precision) for col in columns]
        )
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_run_summary(result, evaluator=None) -> str:
    """Render one DSE run's summary, including evaluation-pipeline
    performance counters when the run's evaluator is provided.

    Args:
        result: A :class:`repro.core.dse.result.DSEResult`.
        evaluator: The :class:`repro.cost.evaluator.CostEvaluator` the
            run used; adds evaluations/sec, worker count, and the
            layer-level mapping-cache hit-rate to the summary.
    """
    lines = [
        f"{result.technique} on {result.model}: "
        f"{result.evaluations} evaluations, {result.wall_seconds:.1f}s",
        f"best objective (latency_ms): {format_cell(result.best_objective)}",
        f"feasible fraction: {result.feasibility_fraction():.2f}",
    ]
    if evaluator is not None:
        perf = evaluator.perf_summary()
        cache = perf["mapping_cache"]
        lines.append(
            f"cost model: {perf['evaluations']} unique evaluations in "
            f"{perf['total_seconds']:.2f}s "
            f"({perf['evaluations_per_second']:.1f} eval/s, "
            f"jobs={perf['jobs']})"
        )
        if cache["enabled"]:
            lines.append(
                "mapping cache: "
                f"{cache['exact_hits']} exact + "
                f"{cache['rescore_hits']} re-scored hits, "
                f"{cache['misses']} misses "
                f"(hit rate {cache['hit_rate']:.0%}, "
                f"{cache['entries']} entries)"
            )
        else:
            lines.append("mapping cache: disabled")
        batch = perf["batch_eval"]
        if batch["supported"]:
            if batch["enabled"]:
                parts = [
                    f"{batch['batch_candidates']} candidates in "
                    f"{batch['batches']} batches "
                    f"({batch['batch_candidates_per_second']:.0f} cand/s)"
                ]
                if batch["scalar_searches"]:
                    parts.append(
                        f"{batch['scalar_candidates']} scalar-scored "
                        f"({batch['int64_fallbacks']} int64 fallbacks)"
                    )
                lines.append("batch eval: " + ", ".join(parts))
                if batch.get("fused_blocks"):
                    fused = (
                        f"fused eval: {batch['fused_candidates']} candidates "
                        f"in {batch['fused_blocks']} cross-layer blocks "
                        f"({batch['fused_layers']} layer searches)"
                    )
                    if batch["fused_fallbacks"]:
                        fused += (
                            f", {batch['fused_fallbacks']} per-layer fallbacks"
                        )
                    lines.append(fused)
            else:
                lines.append("batch eval: disabled (scalar reference path)")
        fleet = perf.get("shm_fleet")
        if fleet:
            shm = (
                f"shm fleet: {fleet['blocks_sharded']} blocks sharded x "
                f"{fleet['shards']} shards "
                f"({fleet['shards_dispatched']} dispatched, "
                f"{fleet['warm_hits']} warm hits, "
                f"{fleet['shm_bytes'] / 1e6:.1f} MB shared)"
            )
            if fleet["shard_resubmissions"]:
                shm += f", {fleet['shard_resubmissions']} resubmissions"
            if fleet["blocks_inline"] or fleet["block_fallbacks"]:
                shm += (
                    f", {fleet['blocks_inline'] + fleet['block_fallbacks']} "
                    "blocks inline"
                )
            lines.append(shm)
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    max_points: int = 20,
    label: str = "iteration",
) -> str:
    """Render convergence curves as a compact text table, subsampled."""
    lines = []
    for name, values in series.items():
        values = list(values)
        if not values:
            lines.append(f"{name}: (empty)")
            continue
        step = max(1, len(values) // max_points)
        picks = list(range(0, len(values), step))
        if picks[-1] != len(values) - 1:
            picks.append(len(values) - 1)
        rendered = ", ".join(
            f"{i}:{format_cell(values[i])}" for i in picks
        )
        lines.append(f"{name} ({label}:value): {rendered}")
    return "\n".join(lines)
