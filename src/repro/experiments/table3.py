"""Table 3: objective reduction per acquisition attempt.

The paper's effectiveness metric: at every acquisition attempt
Explainable-DSE reduces the objective by ~30% on average, vs ~1.4% (or
negative progress) for non-explainable techniques.  The reproduction
computes the same geometric-mean per-attempt reduction from each run's
best-so-far trajectory; techniques that never found a feasible hardware
solution report N/A, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.harness import (
    PAPER_TECHNIQUES,
    ComparisonRunner,
    TechniqueSpec,
)
from repro.experiments.reporting import format_table
from repro.workloads.registry import MODEL_NAMES

__all__ = ["Table3Result", "run"]


@dataclass
class Table3Result:
    """Per-attempt objective reduction (fraction) per technique/model.

    ``None`` marks the paper's N/A cells (no feasible solution found).
    """

    reduction: Dict[str, Dict[str, Optional[float]]]

    def average(self, technique: str) -> Optional[float]:
        values = [
            v for v in self.reduction[technique].values() if v is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def format(self) -> str:
        rows = {}
        for technique, row in self.reduction.items():
            cells = {
                model: (None if v is None else f"{v * 100:.2f}%")
                for model, v in row.items()
            }
            avg = self.average(technique)
            cells["average"] = None if avg is None else f"{avg * 100:.2f}%"
            rows[technique] = cells
        return (
            "Table 3 — objective reduction per acquisition attempt "
            "(N/A shown as '-')\n"
            + format_table(rows, columns=list(MODEL_NAMES) + ["average"])
        )


def run(
    runner: Optional[ComparisonRunner] = None,
    models: Optional[Sequence[str]] = None,
    techniques: Sequence[TechniqueSpec] = PAPER_TECHNIQUES,
) -> Table3Result:
    """Compute per-attempt reductions from the comparison matrix."""
    runner = runner or ComparisonRunner()
    matrix = runner.run_matrix(techniques, models)
    reduction: Dict[str, Dict[str, Optional[float]]] = {}
    for label, row in matrix.items():
        reduction[label] = {}
        for model, result in row.items():
            if result.found_feasible:
                reduction[label][model] = result.per_attempt_reduction()
            else:
                reduction[label][model] = None
    return Table3Result(reduction=reduction)
