"""Figure 14 case study: DSE-obtained designs vs Edge TPU and Eyeriss.

The paper compares throughput (FPS), area efficiency (FPS/mm^2), and
energy efficiency (FPS/J) of the DSE's codesigns against two reference
edge accelerators.  The reference numbers below are the *published*
figures the paper itself used — Coral Edge TPU performance benchmarks [11]
(scaled to 16-bit precision as in the paper, with the 1.4 W datasheet
power) and the Eyeriss chip evaluations [7] (65 nm, 12.25 mm^2) — since
the physical chips cannot be re-measured here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.reporting import format_table
from repro.experiments.setup import run_explainable_dse

__all__ = ["ReferenceAccelerator", "EDGE_TPU", "EYERISS", "Fig14Result", "run"]


@dataclass(frozen=True)
class ReferenceAccelerator:
    """Published figures for a reference edge accelerator.

    ``fps`` maps benchmark-model names to single-stream throughput; models
    the chip was never measured on are absent.
    """

    name: str
    area_mm2: float
    power_w: float
    fps: Dict[str, float]

    def area_efficiency(self, model: str) -> Optional[float]:
        if model not in self.fps:
            return None
        return self.fps[model] / self.area_mm2

    def energy_efficiency(self, model: str) -> Optional[float]:
        """FPS per joule == FPS^2 / W for steady-state inference."""
        if model not in self.fps:
            return None
        return self.fps[model] / self.power_w


#: Coral Edge TPU: ~25 mm^2 module SoC estimate, 1.4 W (MobileNetV2
#: datasheet point, as assumed by the paper), Coral benchmark FPS scaled
#: 2x down for the 16-bit precision comparison.
EDGE_TPU = ReferenceAccelerator(
    name="edge-tpu",
    area_mm2=25.0,
    power_w=1.4,
    fps={
        "mobilenetv2": 192.0,
        "efficientnetb0": 160.0,
        "resnet50": 28.0,
        "vgg16": 4.0,
        "resnet18": 60.0,
    },
)

#: Eyeriss (65 nm chip): 12.25 mm^2, 278 mW; published AlexNet/VGG-16
#: rates with AlexNet-class throughput standing in for the light models.
EYERISS = ReferenceAccelerator(
    name="eyeriss",
    area_mm2=12.25,
    power_w=0.278,
    fps={
        "vgg16": 0.7,
        "resnet18": 25.0,
        "mobilenetv2": 30.0,
        "efficientnetb0": 25.0,
        "resnet50": 5.0,
    },
)


@dataclass
class Fig14Result:
    """Throughput / area- / energy-efficiency comparison rows."""

    rows: Dict[str, Dict[str, Optional[float]]]  # [model][column]

    def format(self) -> str:
        return "Fig. 14 — DSE designs vs Edge TPU / Eyeriss\n" + format_table(
            self.rows,
            columns=[
                "dse fps",
                "edge-tpu fps",
                "eyeriss fps",
                "dse fps/mm2",
                "edge-tpu fps/mm2",
                "eyeriss fps/mm2",
                "dse fps/W",
                "edge-tpu fps/W",
                "eyeriss fps/W",
            ],
            row_header="model",
        )

    def geomean_throughput_ratio(self, reference: str) -> float:
        """Geomean DSE/reference FPS ratio over commonly-measured models."""
        ratios = []
        for cells in self.rows.values():
            dse = cells.get("dse fps")
            ref = cells.get(f"{reference} fps")
            if dse and ref and math.isfinite(dse):
                ratios.append(dse / ref)
        if not ratios:
            return math.nan
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def run(
    models=("mobilenetv2", "efficientnetb0", "resnet18", "resnet50", "vgg16"),
    iterations: int = 60,
    top_n: int = 100,
) -> Fig14Result:
    """Run Explainable-DSE codesign per model and compare to references."""
    rows: Dict[str, Dict[str, Optional[float]]] = {}
    for model in models:
        result = run_explainable_dse(
            model, iterations=iterations, mapping_mode="codesign", top_n=top_n
        )
        if result.best is not None:
            fps = result.best.costs["throughput"]
            area = result.best.costs["area_mm2"]
            power = result.best.costs["power_w"]
        else:
            fps, area, power = math.nan, math.nan, math.nan
        rows[model] = {
            "dse fps": fps,
            "edge-tpu fps": EDGE_TPU.fps.get(model),
            "eyeriss fps": EYERISS.fps.get(model),
            "dse fps/mm2": fps / area if area else None,
            "edge-tpu fps/mm2": EDGE_TPU.area_efficiency(model),
            "eyeriss fps/mm2": EYERISS.area_efficiency(model),
            "dse fps/W": fps / power if power else None,
            "edge-tpu fps/W": EDGE_TPU.energy_efficiency(model),
            "eyeriss fps/W": EYERISS.energy_efficiency(model),
        }
    return Fig14Result(rows=rows)
