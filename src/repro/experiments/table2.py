"""Table 2: latency minimized by DSE techniques in a dynamic (100-iteration)
budget.

The paper's headline dynamic-DSE result: under a short budget only
Explainable-DSE reliably lands feasible, high-throughput designs; most
black-box rows are infeasible (dashes) or miss the throughput requirement
(shaded).  The reproduction runs the same matrix at the dynamic budget and
additionally reports, per cell, whether the best design met throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.harness import (
    DYNAMIC_TECHNIQUES,
    ComparisonRunner,
    TechniqueSpec,
)
from repro.experiments.reporting import format_table
from repro.workloads.registry import MODEL_NAMES

__all__ = ["Table2Result", "run"]


@dataclass
class Table2Result:
    """Dynamic-budget latencies with feasibility annotations."""

    latency_ms: Dict[str, Dict[str, float]]
    met_all: Dict[str, Dict[str, bool]]  # best design met all constraints
    found_area_power: Dict[str, Dict[str, bool]]  # any acquisition met a+p
    iterations: int

    def cell(self, technique: str, model: str) -> str:
        """Render a cell the way the paper does: value when feasible,
        '-' when only area/power were met, '-*' when nothing was."""
        if self.met_all[technique][model]:
            value = self.latency_ms[technique][model]
            return f"{value:.3g}"
        if self.found_area_power[technique][model]:
            return "-"
        return "-*"

    def format(self) -> str:
        rows = {
            technique: {
                model: self.cell(technique, model)
                for model in self.latency_ms[technique]
            }
            for technique in self.latency_ms
        }
        return (
            f"Table 2 — latency (ms) in {self.iterations} iterations "
            "('-' = no all-constraints-feasible design; "
            "'-*' = not even area/power met)\n"
            + format_table(rows, columns=list(MODEL_NAMES))
        )


def run(
    runner: Optional[ComparisonRunner] = None,
    models: Optional[Sequence[str]] = None,
    techniques: Sequence[TechniqueSpec] = DYNAMIC_TECHNIQUES,
) -> Table2Result:
    """Run the dynamic-budget comparison and extract Table 2."""
    runner = runner or ComparisonRunner()
    matrix = runner.run_matrix(techniques, models)
    latency = {
        label: {m: r.best_objective for m, r in row.items()}
        for label, row in matrix.items()
    }
    met_all = {
        label: {m: r.found_feasible for m, r in row.items()}
        for label, row in matrix.items()
    }
    found_ap = {
        label: {
            m: r.feasibility_fraction(["area", "power"]) > 0
            for m, r in row.items()
        }
        for label, row in matrix.items()
    }
    return Table2Result(
        latency_ms=latency,
        met_all=met_all,
        found_area_power=found_ap,
        iterations=runner.iterations,
    )
