"""Figure 12: feasibility of the solutions each technique acquires.

The paper reports what fraction of each technique's acquisitions met (a)
the area and power constraints and (b) all three constraints including
throughput: black-box techniques sit at ~15-50% for (a) but ~0.1-0.6% for
(b), while Explainable-DSE reaches 87% / 15% by prioritizing feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.harness import (
    PAPER_TECHNIQUES,
    ComparisonRunner,
    TechniqueSpec,
)
from repro.experiments.reporting import format_table

__all__ = ["Fig12Result", "run"]


@dataclass
class Fig12Result:
    """Feasible-acquisition fractions per technique (mean across models)."""

    area_power_fraction: Dict[str, Dict[str, float]]
    all_constraints_fraction: Dict[str, Dict[str, float]]

    def mean_fractions(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for technique in self.area_power_fraction:
            ap = self.area_power_fraction[technique].values()
            allc = self.all_constraints_fraction[technique].values()
            out[technique] = {
                "area+power": sum(ap) / len(ap),
                "all constraints": sum(allc) / len(allc),
            }
        return out

    def format(self) -> str:
        return (
            "Fig. 12 — fraction of acquisitions meeting constraints "
            "(mean across models)\n"
            + format_table(
                self.mean_fractions(),
                columns=["area+power", "all constraints"],
            )
        )


def run(
    runner: Optional[ComparisonRunner] = None,
    models: Optional[Sequence[str]] = None,
    techniques: Sequence[TechniqueSpec] = PAPER_TECHNIQUES,
) -> Fig12Result:
    """Extract feasibility fractions from the comparison matrix."""
    runner = runner or ComparisonRunner()
    matrix = runner.run_matrix(techniques, models)
    area_power = {
        label: {
            m: r.feasibility_fraction(["area", "power"])
            for m, r in row.items()
        }
        for label, row in matrix.items()
    }
    all_constraints = {
        label: {m: r.feasibility_fraction() for m, r in row.items()}
        for label, row in matrix.items()
    }
    return Fig12Result(
        area_power_fraction=area_power,
        all_constraints_fraction=all_constraints,
    )
