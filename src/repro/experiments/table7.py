"""Table 7: size of the per-layer mapping space under successive prunings.

For one representative layer per benchmark model the paper reports the
number of tile sizings (arbitrary vs factor-constrained vs hardware-valid),
the ordering counts before/after reuse pruning, and the resulting full /
factorization-constrained / reuse-aware mapping-space sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.accelerator import build_edge_design_space, config_from_point
from repro.experiments.reporting import format_table
from repro.mapping.space_size import MappingSpaceSize, analyze_mapping_space
from repro.workloads.registry import load_workload

__all__ = ["TABLE7_LAYERS", "Table7Result", "run"]

#: Representative large-space layer per model (paper Table 7's choices,
#: mapped onto this repository's layer names).
TABLE7_LAYERS: Dict[str, str] = {
    "resnet18": "conv2_x",
    "mobilenetv2": "s2_expand",
    "efficientnetb0": "s2_expand_first",
    "vgg16": "conv1_2",
    "resnet50": "conv2_3x3",
    "vision_transformer": "patch_embed",
    "fasterrcnn_mobilenetv3": "b10_expand",
    "yolov5": "down1",
    "transformer": "decoder.output_projection",
    "bert": "encoder.layer.0.output.dense",
    "wav2vec2": "encoder.layers.0.feed_forward",
}


@dataclass
class Table7Result:
    """Per-model mapping-space analysis rows."""

    rows: Dict[str, MappingSpaceSize]

    def format(self) -> str:
        table = {}
        for model, size in self.rows.items():
            table[model] = {
                "layer": size.layer_name,
                "A(sizings)": f"1e{size.tile_sizings_log10:.0f}",
                "B(factors)": f"1e{size.valid_factor_tilings_log10:.0f}",
                "C(hw-valid)": (
                    f"1e{size.hw_valid_tilings_log10:.0f}"
                    if size.hw_valid_tilings_log10 is not None
                    else "-"
                ),
                "D(orders)": f"1e{size.orderings_per_level_log10:.0f}",
                "E(reuse)": str(size.unique_reuse_orderings),
                "F(full)": f"1e{size.full_space_log10:.0f}",
                "G(factor)": f"1e{size.factor_space_log10:.0f}",
                "H(reuse-aware)": f"1e{size.reuse_aware_space_log10:.0f}",
            }
        return "Table 7 — mapping-space sizes\n" + format_table(
            table,
            columns=[
                "layer",
                "A(sizings)",
                "B(factors)",
                "C(hw-valid)",
                "D(orders)",
                "E(reuse)",
                "F(full)",
                "G(factor)",
                "H(reuse-aware)",
            ],
            row_header="model",
        )


def run(samples: int = 200, with_hardware: bool = True) -> Table7Result:
    """Analyze the Table 7 layers (optionally estimating column C on a
    mid-range hardware configuration)."""
    config = None
    if with_hardware:
        space = build_edge_design_space()
        point = space.minimum_point()
        point.update(
            pes=1024,
            l1_bytes=256,
            l2_kb=512,
            offchip_bw_mbps=8192,
            noc_datawidth=128,
        )
        for op in ("I", "W", "O", "PSUM"):
            point[f"phys_unicast_{op}"] = 16
            point[f"virt_unicast_{op}"] = 8
        config = config_from_point(point)
    rows = {}
    for model, layer_name in TABLE7_LAYERS.items():
        layer = load_workload(model).layer(layer_name)
        rows[model] = analyze_mapping_space(
            layer, config=config, samples=samples
        )
    return Table7Result(rows=rows)
