"""One-at-a-time sensitivity analysis of costs to design parameters.

§C of the paper suggests that when no first-hand bottleneck model exists,
"designers could estimate bottleneck mitigation through characterization
or sensitivity analysis of design parameters".  This module provides that
characterization tool: sweep each parameter across its range from a base
point (everything else pinned) and report how each cost responds — a
tornado-style summary that reveals which parameters a bottleneck model
should associate with which factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.arch.design_space import DesignPoint, DesignSpace
from repro.cost.evaluator import CostEvaluator
from repro.experiments.reporting import format_table

__all__ = ["ParameterSweep", "SensitivityReport", "analyze_sensitivity"]


@dataclass(frozen=True)
class ParameterSweep:
    """Cost response of one parameter's sweep.

    Attributes:
        parameter: Swept parameter name.
        values: Parameter values evaluated (ascending).
        costs: Per cost key, the cost at each value.
    """

    parameter: str
    values: Tuple[object, ...]
    costs: Mapping[str, Tuple[float, ...]]

    def swing(self, cost_key: str) -> float:
        """Max/min ratio of a cost across the sweep (1.0 = insensitive).

        Infinite costs (unmappable points) are excluded; returns ``nan``
        when fewer than two finite samples remain.
        """
        finite = [v for v in self.costs[cost_key] if math.isfinite(v)]
        if len(finite) < 2 or min(finite) <= 0:
            return math.nan
        return max(finite) / min(finite)

    def monotone_direction(self, cost_key: str) -> str:
        """'decreasing', 'increasing', 'mixed', or 'flat' over the sweep."""
        finite = [v for v in self.costs[cost_key] if math.isfinite(v)]
        if len(finite) < 2:
            return "flat"
        decreasing = all(a >= b - 1e-12 for a, b in zip(finite, finite[1:]))
        increasing = all(a <= b + 1e-12 for a, b in zip(finite, finite[1:]))
        if decreasing and increasing:
            return "flat"
        if decreasing:
            return "decreasing"
        if increasing:
            return "increasing"
        return "mixed"


@dataclass
class SensitivityReport:
    """All parameter sweeps from one base point."""

    base_point: DesignPoint
    sweeps: Dict[str, ParameterSweep]
    cost_keys: Tuple[str, ...]

    def ranked_parameters(self, cost_key: str) -> List[Tuple[str, float]]:
        """Parameters ranked by their swing on ``cost_key`` (largest first)."""
        swings = [
            (name, sweep.swing(cost_key))
            for name, sweep in self.sweeps.items()
        ]
        swings.sort(
            key=lambda item: -(item[1] if math.isfinite(item[1]) else 0.0)
        )
        return swings

    def format(self, cost_key: str = "latency_ms") -> str:
        rows = {}
        for name, swing in self.ranked_parameters(cost_key):
            sweep = self.sweeps[name]
            rows[name] = {
                "swing (max/min)": swing,
                "direction": sweep.monotone_direction(cost_key),
                "range": f"{sweep.values[0]}..{sweep.values[-1]}",
            }
        return (
            f"Sensitivity of {cost_key} (one-at-a-time from base point)\n"
            + format_table(
                rows,
                columns=["swing (max/min)", "direction", "range"],
                row_header="parameter",
            )
        )


def analyze_sensitivity(
    space: DesignSpace,
    evaluator: CostEvaluator,
    base_point: Optional[DesignPoint] = None,
    parameters: Optional[Sequence[str]] = None,
    cost_keys: Sequence[str] = ("latency_ms", "area_mm2", "power_w", "energy_mj"),
    max_values_per_parameter: int = 8,
) -> SensitivityReport:
    """Sweep each parameter one-at-a-time from a base point.

    Args:
        space: The design space.
        evaluator: Cost evaluator (cached: repeated base points are free).
        base_point: Pin for the non-swept parameters (default: minimum).
        parameters: Subset of parameters to sweep (default: all).
        cost_keys: Costs to record.
        max_values_per_parameter: Cap on evaluated values per axis
            (log-spaced subset of the parameter's range).
    """
    base = dict(base_point or space.minimum_point())
    space.validate(base)
    names = list(parameters or space.names)
    sweeps: Dict[str, ParameterSweep] = {}
    for name in names:
        param = space.parameter(name)
        values = list(param.values)
        if len(values) > max_values_per_parameter:
            step = (len(values) - 1) / (max_values_per_parameter - 1)
            picks = sorted({round(i * step) for i in range(max_values_per_parameter)})
            values = [values[i] for i in picks]
        costs: Dict[str, List[float]] = {key: [] for key in cost_keys}
        for value in values:
            evaluation = evaluator.evaluate(
                space.with_value(base, name, value)
            )
            for key in cost_keys:
                costs[key].append(evaluation.costs[key])
        sweeps[name] = ParameterSweep(
            parameter=name,
            values=tuple(values),
            costs={key: tuple(series) for key, series in costs.items()},
        )
    return SensitivityReport(
        base_point=base, sweeps=sweeps, cost_keys=tuple(cost_keys)
    )
