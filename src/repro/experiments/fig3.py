"""Figure 3: effectiveness of non-explainable vs explainable DSE.

Three panels for an EfficientNetB0 edge-accelerator exploration:
(a) efficiency — latency of the best obtained solution; (b) feasibility —
percentage of evaluated solutions meeting constraints; (c) agility —
exploration time.  A single-model slice of the full comparison matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.harness import (
    PAPER_TECHNIQUES,
    ComparisonRunner,
    TechniqueSpec,
)
from repro.experiments.reporting import format_table

__all__ = ["Fig3Result", "run", "FIG3_MODEL"]

FIG3_MODEL = "efficientnetb0"


@dataclass
class Fig3Result:
    """Efficiency / feasibility / agility rows for one model."""

    model: str
    rows: Dict[str, Dict[str, float]]  # [technique][metric]

    def format(self) -> str:
        return (
            f"Fig. 3 — DSE effectiveness for {self.model}\n"
            + format_table(
                self.rows,
                columns=[
                    "best latency (ms)",
                    "feasible (%)",
                    "area+power feasible (%)",
                    "search time (s)",
                    "evaluations",
                ],
            )
        )


def run(
    runner: Optional[ComparisonRunner] = None,
    model: str = FIG3_MODEL,
    techniques: Sequence[TechniqueSpec] = PAPER_TECHNIQUES,
) -> Fig3Result:
    """Run (or reuse) the comparison for the Fig. 3 model."""
    runner = runner or ComparisonRunner()
    rows: Dict[str, Dict[str, float]] = {}
    for spec in techniques:
        result = runner.run(spec, model)
        rows[spec.label] = {
            "best latency (ms)": result.best_objective,
            "feasible (%)": result.feasibility_fraction() * 100,
            "area+power feasible (%)": result.feasibility_fraction(
                ["area", "power"]
            )
            * 100,
            "search time (s)": result.wall_seconds,
            "evaluations": result.evaluations,
        }
    return Fig3Result(model=model, rows=rows)
