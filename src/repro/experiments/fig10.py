"""Figure 10: search time and evaluated designs per technique.

The paper shows total exploration time (bars) and the number of designs
each technique actually evaluated (triangles): Explainable-DSE converges
after ~54-59 designs while the baselines consume the full budget, cutting
search time 53x (fixed dataflow) / 103x (codesign) on average.  The
reproduction reports wall-clock seconds and evaluation counts for the same
matrix, plus the mean time ratio vs Explainable-DSE.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.harness import (
    PAPER_TECHNIQUES,
    ComparisonRunner,
    TechniqueSpec,
)
from repro.experiments.reporting import format_table
from repro.workloads.registry import MODEL_NAMES

__all__ = ["Fig10Result", "run"]


@dataclass
class Fig10Result:
    """Search time (s) and evaluated-design counts per technique/model."""

    seconds: Dict[str, Dict[str, float]]
    evaluations: Dict[str, Dict[str, int]]
    iterations: int

    def mean_time_ratio_vs(self, reference: str) -> Dict[str, float]:
        """Mean search-time ratio of every technique vs ``reference``."""
        out = {}
        ref_row = self.seconds[reference]
        for technique, row in self.seconds.items():
            ratios = [
                row[m] / ref_row[m]
                for m in ref_row
                if ref_row[m] > 0 and m in row
            ]
            out[technique] = sum(ratios) / len(ratios) if ratios else math.nan
        return out

    def mean_evaluations(self) -> Dict[str, float]:
        return {
            technique: sum(row.values()) / len(row)
            for technique, row in self.evaluations.items()
        }

    def format(self) -> str:
        lines = [
            f"Fig. 10 — search time (seconds), {self.iterations}-iteration budget",
            format_table(self.seconds, columns=list(MODEL_NAMES)),
            "",
            "Evaluated designs (mean across models):",
        ]
        for technique, mean in self.mean_evaluations().items():
            lines.append(f"  {technique}: {mean:.0f}")
        return "\n".join(lines)


def run(
    runner: Optional[ComparisonRunner] = None,
    models: Optional[Sequence[str]] = None,
    techniques: Sequence[TechniqueSpec] = PAPER_TECHNIQUES,
) -> Fig10Result:
    """Execute (or reuse) the comparison matrix and extract Fig. 10."""
    runner = runner or ComparisonRunner()
    matrix = runner.run_matrix(techniques, models)
    seconds = {
        label: {m: r.wall_seconds for m, r in row.items()}
        for label, row in matrix.items()
    }
    evaluations = {
        label: {m: r.evaluations for m, r in row.items()}
        for label, row in matrix.items()
    }
    return Fig10Result(
        seconds=seconds, evaluations=evaluations, iterations=runner.iterations
    )
