"""Experiment setup: Table 1 constraints, evaluators, and run factories.

Centralizes everything the per-figure experiment modules share: the edge
design space, the per-model throughput requirements, the mapper choices
("FixDF" = fixed output-stationary dataflow; "Codesign" = per-hardware
mapping optimization), and uniform runner functions for Explainable-DSE and
every baseline technique.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.arch.accelerator import build_edge_design_space
from repro.arch.design_space import DesignPoint, DesignSpace
from repro.core.dse.constraints import Constraint, Sense
from repro.core.dse.explainable import ExplainableDSE
from repro.core.dse.result import DSEResult
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import (
    FixedDataflowMapper,
    RandomSearchMapper,
    TopNMapper,
)
from repro.optim import (
    BayesianOptimization,
    GeneticAlgorithm,
    GridSearch,
    HyperMapperDSE,
    LocalSearch,
    RandomSearch,
    ReinforcementLearningDSE,
    SimulatedAnnealing,
)
from repro.workloads.registry import load_workload

__all__ = [
    "AREA_BUDGET_MM2",
    "POWER_BUDGET_W",
    "THROUGHPUT_REQUIREMENTS",
    "BASELINE_TECHNIQUES",
    "bench_scale",
    "edge_constraints",
    "make_evaluator",
    "run_explainable_dse",
    "run_baseline",
]

#: Table 1 resource budgets for the edge accelerator.
AREA_BUDGET_MM2 = 75.0
POWER_BUDGET_W = 4.0

#: Minimum single-stream inference throughput (inferences per second).
#:
#: Table 1 states 40/10 FPS for light/large vision models and
#: 120/530/176k *samples* per second for Transformer/BERT/wav2vec2.  NLP
#: samples are tokens (Transformer, BERT) or audio samples (wav2vec2), so
#: the per-inference requirement divides by tokens-per-inference (64 / 384)
#: and by the clip length (64000 samples), respectively.
THROUGHPUT_REQUIREMENTS: Dict[str, float] = {
    "resnet18": 40.0,
    "mobilenetv2": 40.0,
    "efficientnetb0": 40.0,
    "vgg16": 10.0,
    "resnet50": 10.0,
    "vision_transformer": 10.0,
    "fasterrcnn_mobilenetv3": 10.0,
    "yolov5": 10.0,
    "transformer": 120.0 / 64.0,
    "bert": 530.0 / 384.0,
    "wav2vec2": 176000.0 / 64000.0,
}


def bench_scale() -> float:
    """Budget scale factor from ``REPRO_BENCH_SCALE`` (default 1.0).

    Benchmarks default to laptop-friendly budgets; set
    ``REPRO_BENCH_SCALE=10`` (or more) to approach the paper's budgets.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def edge_constraints(model: str) -> List[Constraint]:
    """Area, power, and throughput constraints for one benchmark model."""
    if model not in THROUGHPUT_REQUIREMENTS:
        raise KeyError(f"no throughput requirement registered for {model!r}")
    return [
        Constraint("area", "area_mm2", AREA_BUDGET_MM2),
        Constraint("power", "power_w", POWER_BUDGET_W),
        Constraint(
            "throughput",
            "throughput",
            THROUGHPUT_REQUIREMENTS[model],
            Sense.GEQ,
        ),
    ]


def make_evaluator(
    model: str,
    mapping_mode: str = "codesign",
    top_n: int = 150,
    random_mapping_trials: int = 100,
    seed: int = 0,
    objective: str = "latency",
    batch_eval: Optional[bool] = None,
    jobs: Optional[object] = None,
    **evaluator_kwargs,
) -> CostEvaluator:
    """Build a cost evaluator for a model with the chosen mapper.

    Args:
        model: Benchmark model name.
        mapping_mode: ``"fixed"`` for the output-stationary schema,
            ``"codesign"`` for the top-N dMazeRunner-style mapper, or
            ``"random-mapper"`` for the Timeloop-like random mapper the
            paper gives black-box codesign baselines.
        top_n: Mapping budget of the top-N mapper.
        random_mapping_trials: Trials of the random mapper.
        seed: Seed for the random mapper.
        objective: Mapping metric the searching mappers minimize
            (``"latency"``, ``"energy"``, or ``"edp"``; validated with a
            helpful error).  The fixed dataflow is not searched, so the
            objective does not apply to it.
        batch_eval: Vectorized candidate scoring for the searching
            mappers (None defers to ``REPRO_BATCH_EVAL``, default on;
            bit-identical either way).
        jobs: Per-layer mapping-search worker count (None reads
            ``REPRO_JOBS``; 1 = serial).
        evaluator_kwargs: Forwarded to :class:`CostEvaluator` (e.g.
            ``mapping_cache``, ``use_mapping_cache``, ``executor_mode``).
    """
    workload = load_workload(model)
    if mapping_mode == "fixed":
        mapper = FixedDataflowMapper()
    elif mapping_mode == "codesign":
        mapper = TopNMapper(
            top_n=top_n, objective=objective, batch_eval=batch_eval
        )
    elif mapping_mode == "random-mapper":
        mapper = RandomSearchMapper(
            trials=random_mapping_trials,
            seed=seed,
            objective=objective,
            batch_eval=batch_eval,
        )
    else:
        raise ValueError(f"unknown mapping mode {mapping_mode!r}")
    return CostEvaluator(workload, mapper, jobs=jobs, **evaluator_kwargs)


#: Baseline technique registry: label -> optimizer class.
BASELINE_TECHNIQUES = {
    "grid": GridSearch,
    "random": RandomSearch,
    "annealing": SimulatedAnnealing,
    "genetic": GeneticAlgorithm,
    "bayesian": BayesianOptimization,
    "hypermapper": HyperMapperDSE,
    "reinforcement": ReinforcementLearningDSE,
    "local-search": LocalSearch,
}


def run_explainable_dse(
    model: str,
    iterations: int = 100,
    mapping_mode: str = "codesign",
    top_n: int = 150,
    initial_point: Optional[DesignPoint] = None,
    constraints: Optional[Sequence[Constraint]] = None,
    design_space: Optional[DesignSpace] = None,
    evaluator: Optional[CostEvaluator] = None,
    tracer=None,
    checkpoint_path: Optional[str] = None,
    resume_from=None,
    **dse_kwargs,
) -> DSEResult:
    """Run Explainable-DSE on one benchmark model with edge defaults.

    ``tracer`` / ``checkpoint_path`` / ``resume_from`` configure the
    telemetry subsystem (:mod:`repro.telemetry`): a structured trace of
    every acquisition decision, crash-safe campaign snapshots, and
    mid-campaign resume.
    """
    space = design_space or build_edge_design_space()
    evaluator = evaluator or make_evaluator(
        model, mapping_mode=mapping_mode, top_n=top_n
    )
    dse = ExplainableDSE(
        space,
        evaluator,
        constraints if constraints is not None else edge_constraints(model),
        max_evaluations=iterations,
        **dse_kwargs,
    )
    result = dse.run(
        initial_point,
        tracer=tracer,
        checkpoint_path=checkpoint_path,
        resume_from=resume_from,
    )
    suffix = "fixdf" if mapping_mode == "fixed" else "codesign"
    result.technique = f"explainable-{suffix}"
    return result


def run_baseline(
    technique: str,
    model: str,
    iterations: int = 100,
    mapping_mode: str = "fixed",
    seed: int = 0,
    random_mapping_trials: int = 100,
    constraints: Optional[Sequence[Constraint]] = None,
    design_space: Optional[DesignSpace] = None,
    evaluator: Optional[CostEvaluator] = None,
    tracer=None,
    **optimizer_kwargs,
) -> DSEResult:
    """Run one non-explainable baseline on one benchmark model.

    Black-box codesign baselines (paper §F) pair the optimizer with the
    Timeloop-like random mapper: pass ``mapping_mode="random-mapper"``.
    ``tracer`` records per-trial :mod:`repro.telemetry` events so baseline
    journals stay comparable with Explainable-DSE traces.
    """
    if technique not in BASELINE_TECHNIQUES:
        raise KeyError(
            f"unknown technique {technique!r}; "
            f"available: {sorted(BASELINE_TECHNIQUES)}"
        )
    space = design_space or build_edge_design_space()
    evaluator = evaluator or make_evaluator(
        model,
        mapping_mode=mapping_mode,
        random_mapping_trials=random_mapping_trials,
        seed=seed,
    )
    optimizer = BASELINE_TECHNIQUES[technique](
        space,
        evaluator,
        constraints if constraints is not None else edge_constraints(model),
        max_evaluations=iterations,
        seed=seed,
        tracer=tracer,
        **optimizer_kwargs,
    )
    result = optimizer.run()
    suffix = "fixdf" if mapping_mode == "fixed" else "codesign"
    result.technique = f"{technique}-{suffix}"
    return result
