"""Command-line interface: run any paper experiment or a single DSE.

Usage::

    python -m repro explore resnet18 --iterations 60
    python -m repro explore resnet18 --trace runs/resnet18.jsonl
    python -m repro explore resnet18 --resume runs/resnet18.jsonl
    python -m repro report runs/resnet18.jsonl --format md
    python -m repro compare efficientnetb0 --iterations 40
    python -m repro experiment table7
    python -m repro experiment fig4
    python -m repro serve --spool runs/spool
    python -m repro submit resnet18 --server http://127.0.0.1:8321 --wait
    python -m repro list-models

The heavyweight matrix experiments (fig9/fig10/fig11/fig12/table2/table3)
share one comparison run per invocation.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments import (
    fig3,
    fig4,
    fig9,
    fig10,
    fig11,
    fig12,
    fig14,
    fig15,
    table2,
    table3,
    table7,
)
from repro.experiments.harness import ComparisonRunner
from repro.experiments.setup import make_evaluator, run_explainable_dse
from repro.mapping.mapper import MAPPING_OBJECTIVES
from repro.workloads.registry import MODEL_NAMES

__all__ = ["main", "build_parser"]

#: Experiments runnable via ``python -m repro experiment <name>``.
MATRIX_EXPERIMENTS = {
    "fig3": fig3,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "table2": table2,
    "table3": table3,
}
STANDALONE_EXPERIMENTS = {
    "fig4": lambda args: fig4.run(iterations=args.iterations),
    "fig14": lambda args: fig14.run(iterations=args.iterations),
    "fig15": lambda args: fig15.run(),
    "table7": lambda args: table7.run(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Explainable-DSE (ASPLOS 2023) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    explore = sub.add_parser(
        "explore", help="run Explainable-DSE on one benchmark model"
    )
    explore.add_argument("model", choices=MODEL_NAMES)
    explore.add_argument("--iterations", type=int, default=60)
    explore.add_argument(
        "--mapping", choices=("codesign", "fixed"), default="codesign"
    )
    explore.add_argument("--explain", action="store_true",
                         help="print the full explanation log")
    explore.add_argument("--save", metavar="PATH", default=None,
                         help="persist the run to a JSON file")
    explore.add_argument("--perf", action="store_true",
                         help="print evaluation-pipeline performance "
                              "counters (cache hit-rate, eval/s)")
    explore.add_argument(
        "--objective",
        choices=sorted(MAPPING_OBJECTIVES),
        default="latency",
        help="mapping metric minimized by the searching mappers",
    )
    trace_group = explore.add_mutually_exclusive_group()
    trace_group.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL decision journal to PATH "
             "(crash-safe checkpoint at PATH.ckpt)",
    )
    trace_group.add_argument(
        "--resume", metavar="PATH", default=None,
        help="resume an interrupted traced campaign from its journal PATH "
             "(reads PATH.ckpt, verifies it against the journal, and "
             "continues appending to both)",
    )
    _add_jobs_argument(explore)
    _add_batch_eval_argument(explore)

    compare = sub.add_parser(
        "compare", help="compare all techniques on one model (Fig. 3 slice)"
    )
    compare.add_argument("model", choices=MODEL_NAMES)
    compare.add_argument("--iterations", type=int, default=40)
    _add_jobs_argument(compare)
    _add_batch_eval_argument(compare)

    experiment = sub.add_parser(
        "experiment", help="regenerate paper tables/figures ('all' for a report)"
    )
    experiment.add_argument(
        "name",
        choices=sorted({**MATRIX_EXPERIMENTS, **STANDALONE_EXPERIMENTS})
        + ["all"],
    )
    experiment.add_argument("--iterations", type=int, default=60)
    experiment.add_argument(
        "--models", default=None, help="comma-separated model subset"
    )
    experiment.add_argument(
        "--out", default=None, help="write the 'all' report to this file"
    )
    _add_jobs_argument(experiment)
    _add_batch_eval_argument(experiment)

    report = sub.add_parser(
        "report",
        help="render a traced campaign's journal as an explanation "
             "narrative",
    )
    report.add_argument(
        "journal", help="JSONL journal written by 'explore --trace'"
    )
    report.add_argument(
        "--format", choices=("md", "json"), default="md",
        help="output format (default: md)",
    )
    report.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the report to PATH instead of stdout",
    )

    verify = sub.add_parser(
        "verify",
        help="oracle-backed verification: exhaustive cost-model sweep, "
             "bottleneck-tree invariants, fast-path differential matrix, "
             "golden traces, and a seeded design-point fuzzer",
    )
    verify.add_argument(
        "--fuzz-iters", type=int, default=250, metavar="N",
        help="fuzz cases to run (0 disables the fuzz stage; default: 250)",
    )
    verify.add_argument(
        "--fuzz-time-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock cap on the fuzz stage (default: none)",
    )
    verify.add_argument(
        "--update-goldens", action="store_true",
        help="regenerate tests/goldens/ from the current code instead of "
             "comparing against it (review the diff before committing)",
    )
    verify.add_argument(
        "--failures-dir", default="verify-failures", metavar="DIR",
        help="directory for shrunk fuzz reproducers (default: "
             "verify-failures)",
    )
    verify.add_argument(
        "--seed", type=int, default=0,
        help="seed for the sweep mapping set, invariant sampling, and "
             "fuzzer corpus (default: 0)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the campaign service: accept DSE submissions over HTTP "
             "and interleave tenants' campaigns over one shared worker "
             "fleet",
    )
    serve.add_argument(
        "--spool", default="service-spool", metavar="DIR",
        help="per-campaign spool directory (journals, checkpoints, "
             "status); restarting on the same spool resumes unfinished "
             "campaigns (default: service-spool)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="bind port (0 picks a free one; the bound address is printed "
             "on startup)",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=None, metavar="N",
        help="campaigns interleaving at once "
             "(default: $REPRO_SERVICE_MAX_CONCURRENT or 4)",
    )
    serve.add_argument(
        "--quantum", type=int, default=None, metavar="N",
        help="steps per unit of tenant weight per scheduler turn "
             "(default: $REPRO_SERVICE_STEP_QUANTUM or 1)",
    )
    serve.add_argument(
        "--tenant-quota", type=int, default=None, metavar="N",
        help="default per-tenant total step budget "
             "(default: $REPRO_TENANT_QUOTA or unlimited)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="waiting-queue bound; submissions past it are shed with 503 "
             "(default: $REPRO_SERVICE_MAX_QUEUE or 64)",
    )
    serve.add_argument(
        "--tenant-inflight", type=int, default=None, metavar="N",
        help="per-tenant in-flight campaign cap; submissions past it are "
             "shed with 429 (default: $REPRO_SERVICE_TENANT_INFLIGHT or 8)",
    )
    serve.add_argument(
        "--overload-slice-s", type=float, default=2.0, metavar="SECONDS",
        help="slice-latency watermark; above it the scheduler quantum is "
             "clamped to one attempt (default: 2.0)",
    )
    _add_jobs_argument(serve)

    submit = sub.add_parser(
        "submit", help="submit a campaign to a running campaign service"
    )
    submit.add_argument("model", choices=MODEL_NAMES)
    submit.add_argument(
        "--server", required=True, metavar="URL",
        help="service base URL, e.g. http://127.0.0.1:8321",
    )
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--iterations", type=int, default=40)
    submit.add_argument(
        "--mapping", choices=("codesign", "fixed"), default="codesign"
    )
    submit.add_argument(
        "--objective",
        choices=sorted(MAPPING_OBJECTIVES),
        default="latency",
    )
    submit.add_argument(
        "--weight", type=int, default=None,
        help="tenant scheduling weight (steps per turn scale with it)",
    )
    submit.add_argument(
        "--quota", type=int, default=None,
        help="tenant total step budget (0 = unlimited)",
    )
    submit.add_argument(
        "--deadline-s", type=float, default=None, metavar="SECONDS",
        help="processing budget; the campaign settles as 'expired' when "
             "cumulative slice time exceeds it (extendable later)",
    )
    submit.add_argument(
        "--idempotency-key", default=None, metavar="KEY",
        help="makes the submit at-most-once (the server dedups replays) "
             "and therefore safe to retry on transient failures",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the campaign settles and print its outcome",
    )
    submit.add_argument(
        "--follow", action="store_true",
        help="stream the campaign's journal to stdout until it settles "
             "(implies --wait)",
    )

    pareto = sub.add_parser(
        "pareto",
        help="multi-objective frontier: drive Explainable-DSE through the "
             "ask/tell protocol with a journaled Pareto archive, or "
             "replay an existing frontier journal",
    )
    pareto.add_argument(
        "model", nargs="?", choices=MODEL_NAMES, default=None,
        help="benchmark model to explore (omit with --replay)",
    )
    pareto.add_argument("--iterations", type=int, default=40)
    pareto.add_argument(
        "--mapping", choices=("codesign", "fixed"), default="codesign"
    )
    pareto.add_argument(
        "--capacity", type=int, default=64, metavar="N",
        help="frontier size cap; crowding-pruned beyond it (default: 64)",
    )
    pareto.add_argument(
        "--journal", metavar="PATH", default=None,
        help="write the archive's insert/evict journal to PATH "
             "(replayable with --replay)",
    )
    pareto.add_argument(
        "--replay", metavar="PATH", default=None,
        help="rebuild and print the frontier from an existing archive "
             "journal instead of running a campaign",
    )
    pareto.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the frontier snapshot as JSON to PATH",
    )
    _add_jobs_argument(pareto)
    _add_batch_eval_argument(pareto)

    sub.add_parser("list-models", help="list the benchmark models")
    return parser


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="worker count for the parallel evaluation pipeline "
             "('auto' = all cores; default: $REPRO_JOBS or 1 = serial)",
    )


def _add_batch_eval_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-eval",
        choices=("on", "off"),
        default=None,
        help="vectorized batch candidate scoring in the mapping search "
             "(bit-identical to the scalar path; default: "
             "$REPRO_BATCH_EVAL or on)",
    )


def _apply_jobs(args) -> None:
    """Propagate ``--jobs`` to the pipeline via ``REPRO_JOBS`` so every
    evaluator and harness constructed downstream picks it up."""
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        os.environ["REPRO_JOBS"] = str(jobs)


def _apply_batch_eval(args) -> None:
    """Propagate ``--batch-eval`` via ``REPRO_BATCH_EVAL`` so every mapper
    constructed downstream picks it up."""
    batch_eval = getattr(args, "batch_eval", None)
    if batch_eval is not None:
        os.environ["REPRO_BATCH_EVAL"] = "1" if batch_eval == "on" else "0"


def _resolve_trace_args(parser: argparse.ArgumentParser, args):
    """Validate ``--trace``/``--resume`` paths up front.

    Malformed paths are argparse errors (clear message, exit code 2)
    instead of mid-campaign tracebacks.  Returns ``(journal_path,
    checkpoint_path, resume_checkpoint_path)``; all ``None`` when the run
    is untraced.
    """
    from repro.telemetry import default_checkpoint_path

    if args.resume is not None:
        journal = args.resume
        if os.path.isdir(journal):
            parser.error(
                f"argument --resume: {journal!r} is a directory; expected "
                "the journal file of a previous 'explore --trace' run"
            )
        if not os.path.isfile(journal):
            parser.error(
                f"argument --resume: journal {journal!r} does not exist"
            )
        checkpoint = default_checkpoint_path(journal)
        if not os.path.isfile(checkpoint):
            parser.error(
                f"argument --resume: checkpoint {checkpoint!r} not found "
                "next to the journal (was the run started with --trace?)"
            )
        return journal, checkpoint, checkpoint
    if args.trace is not None:
        journal = args.trace
        if os.path.isdir(journal):
            parser.error(
                f"argument --trace: {journal!r} is a directory; expected "
                "a file path for the JSONL journal"
            )
        parent = os.path.dirname(os.path.abspath(journal)) or "."
        if not os.path.isdir(parent):
            parser.error(
                f"argument --trace: directory {parent!r} does not exist"
            )
        return journal, default_checkpoint_path(journal), None
    return None, None, None


def _cmd_explore(args, parser: argparse.ArgumentParser) -> int:
    journal_path, checkpoint_path, resume_path = _resolve_trace_args(
        parser, args
    )
    tracer = None
    if journal_path is not None:
        from repro.telemetry import JsonlSink, Tracer, load_checkpoint

        if resume_path is not None:
            checkpoint = load_checkpoint(resume_path)
            sink = JsonlSink(
                journal_path, resume_events=checkpoint.journal_events
            )
            tracer = Tracer(sink, seq_start=checkpoint.journal_events)
        else:
            sink = JsonlSink(journal_path)
            tracer = Tracer(sink)
    evaluator = make_evaluator(
        args.model,
        mapping_mode=args.mapping,
        objective=args.objective,
        tracer=tracer,
    )
    result = run_explainable_dse(
        args.model,
        iterations=args.iterations,
        mapping_mode=args.mapping,
        evaluator=evaluator,
        tracer=tracer,
        checkpoint_path=checkpoint_path,
        resume_from=resume_path,
    )
    if tracer is not None:
        tracer.close()
        print(
            f"trace journal: {journal_path} "
            f"(checkpoint: {checkpoint_path})"
        )
    if args.perf:
        from repro.experiments.reporting import format_run_summary

        print(format_run_summary(result, evaluator))
    else:
        print(f"{result.technique} on {args.model}: "
              f"{result.evaluations} evaluations, {result.wall_seconds:.1f}s")
    if result.best is None:
        print("no all-constraints-feasible design found")
    else:
        print(f"best point: {result.best.point}")
        print(f"costs: { {k: round(v, 4) for k, v in result.best.costs.items()} }")
    lines = result.explanations if args.explain else result.explanations[:10]
    for line in lines:
        print(f"  {line}")
    if args.save:
        from repro.core.dse.serialization import save_result

        save_result(result, args.save)
        print(f"saved run to {args.save}")
    return 0 if result.best is not None else 1


def _cmd_report(args, parser: argparse.ArgumentParser) -> int:
    if os.path.isdir(args.journal):
        parser.error(
            f"argument journal: {args.journal!r} is a directory; expected "
            "a JSONL journal file"
        )
    if not os.path.isfile(args.journal):
        parser.error(
            f"argument journal: {args.journal!r} does not exist"
        )
    from repro.telemetry import render_report

    text = render_report(args.journal, fmt=args.format)
    if not text.endswith("\n"):
        text += "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_pareto(args, parser: argparse.ArgumentParser) -> int:
    import json as _json

    from repro.experiments.pareto import format_frontier
    from repro.optim.archive import ParetoArchive

    if args.replay is not None:
        if args.model is not None:
            parser.error("--replay takes no model (it reads the journal)")
        if not os.path.isfile(args.replay):
            parser.error(f"argument --replay: {args.replay!r} does not exist")
        archive = ParetoArchive.replay(args.replay, capacity=args.capacity)
    else:
        if args.model is None:
            parser.error("a model is required unless --replay is given")
        from repro.core.dse.explainable import ExplainableDSE
        from repro.experiments.setup import (
            build_edge_design_space,
            edge_constraints,
            make_evaluator,
        )
        from repro.optim import DriverLoop, ExplainableEngine, ParetoArchive

        evaluator = make_evaluator(args.model, mapping_mode=args.mapping)
        dse = ExplainableDSE(
            build_edge_design_space(),
            evaluator,
            edge_constraints(args.model),
            max_evaluations=args.iterations,
        )
        archive = ParetoArchive(
            capacity=args.capacity,
            journal_path=args.journal,
            truncate=args.journal is not None,
        )
        result = DriverLoop(
            ExplainableEngine(dse), archive=archive
        ).run(None)
        archive.flush()
        print(
            f"explainable on {args.model}: {result.evaluations} "
            f"evaluations via ask/tell"
        )
        if args.journal:
            print(f"frontier journal: {args.journal}")
    print(format_frontier(archive))
    if args.out:
        with open(args.out, "w") as handle:
            _json.dump(archive.snapshot(), handle, indent=2)
            handle.write("\n")
        print(f"frontier snapshot written to {args.out}")
    return 0


def _cmd_compare(args) -> int:
    runner = ComparisonRunner(iterations=args.iterations)
    print(fig3.run(runner, model=args.model).format())
    return 0


def _cmd_experiment(args) -> int:
    if args.name == "all":
        from repro.experiments.report_all import generate_report

        runner = ComparisonRunner(iterations=args.iterations)
        models = args.models.split(",") if args.models else None
        report = generate_report(runner, models=models)
        text = report.format()
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
            print(f"report written to {args.out}")
        else:
            print(text)
        return 0
    if args.name in STANDALONE_EXPERIMENTS:
        result = STANDALONE_EXPERIMENTS[args.name](args)
    else:
        runner = ComparisonRunner(iterations=args.iterations)
        kwargs = {}
        if args.models:
            kwargs["models"] = args.models.split(",")
        result = MATRIX_EXPERIMENTS[args.name].run(runner, **kwargs)
    print(result.format())
    return 0


def _cmd_verify(args) -> int:
    from repro.verify import run_verify

    report = run_verify(
        fuzz_iters=args.fuzz_iters,
        update_goldens=args.update_goldens,
        failures_dir=args.failures_dir,
        seed=args.seed,
        fuzz_time_budget_s=args.fuzz_time_budget,
        log=print,
    )
    print()
    for line in report.summary_lines():
        print(line)
    print(f"elapsed: {report.elapsed_s:.1f}s")
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.service import CampaignService
    from repro.service.http import ServiceEndpoint

    async def serve() -> None:
        service = CampaignService(
            args.spool,
            max_concurrent=args.max_concurrent,
            quantum=args.quantum,
            default_quota=(
                "env" if args.tenant_quota is None else args.tenant_quota
            ),
            max_queue=args.max_queue,
            tenant_inflight=args.tenant_inflight,
            overload_slice_s=args.overload_slice_s,
        )
        await service.start()
        endpoint = ServiceEndpoint(service, host=args.host, port=args.port)
        await endpoint.start()
        # The smoke harness and scripts parse this line for the port.
        print(
            f"service listening on http://{args.host}:{endpoint.port} "
            f"(spool: {args.spool})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print(
            "service: stopping at the next slice boundary "
            "(campaigns stay resumable)",
            flush=True,
        )
        await endpoint.stop()
        await service.stop()

    asyncio.run(serve())
    return 0


def _cmd_submit(args) -> int:
    from repro.service.client import ServiceClient, ServiceClientError

    client = ServiceClient(args.server)
    spec = {
        "model": args.model,
        "tenant": args.tenant,
        "iterations": args.iterations,
        "mapping_mode": args.mapping,
        "objective": args.objective,
    }
    if args.weight is not None:
        spec["tenant_weight"] = args.weight
    if args.quota is not None:
        spec["tenant_quota"] = args.quota
    try:
        campaign_id = client.submit(
            spec,
            idempotency_key=args.idempotency_key,
            deadline_s=args.deadline_s,
        )
        print(f"submitted {campaign_id} (tenant: {args.tenant})")
        if args.follow:
            for line in client.stream_journal(campaign_id, follow=True):
                print(line)
        if args.wait or args.follow:
            status = client.wait(campaign_id)
            print(f"campaign {campaign_id}: {status['status']} after "
                  f"{status['steps_done']} steps")
            if status["status"] == "finished":
                result = client.result(campaign_id)
                print(f"best point: {result['best_point']}")
                print(f"evaluations: {result['evaluations']}")
                return 0
            return 1
    except ServiceClientError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(
            f"repro: error: cannot reach service at {args.server}: {exc}",
            file=sys.stderr,
        )
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list-models":
        for model in MODEL_NAMES:
            print(model)
        return 0
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "serve":
        _apply_jobs(args)
        return _cmd_serve(args)
    _apply_jobs(args)
    _apply_batch_eval(args)
    try:
        if args.command == "explore":
            return _cmd_explore(args, parser)
        if args.command == "report":
            return _cmd_report(args, parser)
        if args.command == "pareto":
            return _cmd_pareto(args, parser)
    except Exception as exc:
        from repro.resilience.errors import ReproError, SystemicFaultError
        from repro.telemetry import CheckpointError, TraceEventError

        if isinstance(exc, SystemicFaultError):
            print(f"repro: error: {exc}", file=sys.stderr)
            checkpoint = str(exc.context.get("checkpoint") or "")
            if checkpoint:
                journal = (
                    checkpoint[: -len(".ckpt")]
                    if checkpoint.endswith(".ckpt")
                    else checkpoint
                )
                print(
                    f"repro: campaign state saved; rerun with "
                    f"--resume {journal} once the fault is fixed",
                    file=sys.stderr,
                )
            return 3
        if isinstance(exc, (CheckpointError, TraceEventError)):
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        if isinstance(exc, ReproError):
            # A fault the campaign could not absorb (e.g. the very first
            # evaluation failed after all retries): structured error, no
            # traceback, same exit code as a circuit-breaker abort.
            print(f"repro: error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 3
        raise
    if args.command == "compare":
        return _cmd_compare(args)
    return _cmd_experiment(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
