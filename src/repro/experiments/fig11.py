"""Figure 11: latency reduced over iterations (convergence curves).

The paper plots best-so-far latency against iterations for EfficientNet
(CV) and Transformer (NLP): Explainable-DSE descends at almost every
acquisition attempt and converges within tens of iterations, while
black-box curves plateau high.  The reproduction extracts the same
best-so-far trajectories from the comparison runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import (
    PAPER_TECHNIQUES,
    ComparisonRunner,
)
from repro.experiments.reporting import format_series

__all__ = ["Fig11Result", "run", "FIG11_MODELS"]

#: The two models the paper plots.
FIG11_MODELS = ("efficientnetb0", "transformer")

#: Curves shown in the paper's Fig. 11 panels.
FIG11_TECHNIQUES = (
    "Random Search-FixDF",
    "HyperMapper 2.0-FixDF",
    "Random Search-Codesign",
    "HyperMapper 2.0-Codesign",
    "ExplainableDSE-FixDF",
    "ExplainableDSE-Codesign",
)


@dataclass
class Fig11Result:
    """Best-so-far latency trajectories: [model][technique] -> series."""

    trajectories: Dict[str, Dict[str, List[float]]]

    def final_latency(self, model: str, technique: str) -> float:
        series = self.trajectories[model][technique]
        return series[-1] if series else float("inf")

    def format(self) -> str:
        lines = []
        for model, curves in self.trajectories.items():
            lines.append(f"Fig. 11 — best-so-far latency (ms) for {model}:")
            lines.append(format_series(curves))
            lines.append("")
        return "\n".join(lines)


def run(
    runner: Optional[ComparisonRunner] = None,
    models: Sequence[str] = FIG11_MODELS,
    technique_labels: Sequence[str] = FIG11_TECHNIQUES,
) -> Fig11Result:
    """Extract the Fig. 11 convergence curves from comparison runs."""
    runner = runner or ComparisonRunner()
    specs = [
        spec for spec in PAPER_TECHNIQUES if spec.label in technique_labels
    ]
    matrix = runner.run_matrix(specs, models)
    trajectories: Dict[str, Dict[str, List[float]]] = {m: {} for m in models}
    for label, row in matrix.items():
        for model, result in row.items():
            trajectories[model][label] = result.best_so_far_trajectory()
    return Fig11Result(trajectories=trajectories)
