"""Figure 9: latency of codesigns obtained under the static budget.

The paper reports, per benchmark model, the best feasible latency each
technique reaches in 2500 iterations; Explainable-DSE obtains ~6x lower
latency on average.  The reproduction runs the same technique matrix at a
configurable (default scaled-down) budget and reports best latencies plus
the geomean advantage of Explainable-DSE codesign over every other row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.harness import (
    PAPER_TECHNIQUES,
    ComparisonRunner,
    TechniqueSpec,
)
from repro.experiments.reporting import format_table
from repro.workloads.registry import MODEL_NAMES

__all__ = ["Fig9Result", "run"]

REFERENCE_TECHNIQUE = "ExplainableDSE-Codesign"


@dataclass
class Fig9Result:
    """Best feasible latency (ms) per technique per model."""

    latency_ms: Dict[str, Dict[str, float]]  # [technique][model]
    iterations: int

    def geomean_speedup_over(self, technique: str) -> float:
        """Geomean latency ratio of ``technique`` vs Explainable-Codesign,
        over models where both found a feasible solution."""
        reference = self.latency_ms[REFERENCE_TECHNIQUE]
        other = self.latency_ms[technique]
        ratios = [
            other[m] / reference[m]
            for m in reference
            if math.isfinite(other.get(m, math.inf))
            and math.isfinite(reference[m])
            and reference[m] > 0
        ]
        if not ratios:
            return math.inf
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    def format(self) -> str:
        table = format_table(self.latency_ms, columns=list(MODEL_NAMES))
        lines = [f"Fig. 9 — best feasible latency (ms), {self.iterations} iterations",
                 table, "",
                 "Geomean latency vs ExplainableDSE-Codesign:"]
        for technique in self.latency_ms:
            if technique == REFERENCE_TECHNIQUE:
                continue
            ratio = self.geomean_speedup_over(technique)
            rendered = f"{ratio:.2f}x" if math.isfinite(ratio) else "no feasible overlap"
            lines.append(f"  {technique}: {rendered}")
        return "\n".join(lines)


def run(
    runner: Optional[ComparisonRunner] = None,
    models: Optional[Sequence[str]] = None,
    techniques: Sequence[TechniqueSpec] = PAPER_TECHNIQUES,
) -> Fig9Result:
    """Execute (or reuse) the comparison matrix and extract Fig. 9."""
    runner = runner or ComparisonRunner()
    matrix = runner.run_matrix(techniques, models)
    latency = {
        label: {model: result.best_objective for model, result in row.items()}
        for label, row in matrix.items()
    }
    return Fig9Result(latency_ms=latency, iterations=runner.iterations)
