"""Generate one consolidated reproduction report (all tables & figures).

``python -m repro experiment all [--out report.md]`` runs every experiment
at the configured budget and emits a single markdown-ish document — the
whole evaluation section of the paper regenerated in one command.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments import (
    fig3,
    fig4,
    fig9,
    fig10,
    fig11,
    fig12,
    fig14,
    fig15,
    table2,
    table3,
    table7,
)
from repro.experiments.harness import ComparisonRunner

__all__ = ["FullReport", "generate_report"]


@dataclass
class FullReport:
    """All experiment outputs plus run metadata."""

    sections: Dict[str, str]
    total_seconds: float
    iterations: int

    def format(self) -> str:
        lines = [
            "# Explainable-DSE reproduction report",
            "",
            f"Budget: {self.iterations} evaluations per DSE run; "
            f"generated in {self.total_seconds / 60:.1f} minutes.",
            "",
        ]
        for title, body in self.sections.items():
            lines.append(f"## {title}")
            lines.append("")
            lines.append("```")
            lines.append(body)
            lines.append("```")
            lines.append("")
        return "\n".join(lines)


def generate_report(
    runner: Optional[ComparisonRunner] = None,
    models: Optional[Sequence[str]] = None,
    include_case_studies: bool = True,
) -> FullReport:
    """Run every experiment and collect the formatted outputs.

    The shared :class:`ComparisonRunner` executes the technique x model
    matrix once; the per-figure modules extract their views from it.  The
    standalone experiments (Fig. 4 toy space, Table 7 space analysis,
    Fig. 14/15 case studies) run at modest budgets derived from the
    runner's.

    Args:
        runner: Shared comparison runner (defaults to standard budgets).
        models: Model subset (default: all 11).
        include_case_studies: Skip the slow Fig. 14 DSE-per-model case
            study when False.
    """
    runner = runner or ComparisonRunner()
    started = time.perf_counter()
    sections: Dict[str, str] = {}

    sections["Fig. 3 — DSE effectiveness (EfficientNetB0)"] = fig3.run(
        runner
    ).format()
    sections["Fig. 4 — toy walkthrough"] = fig4.run(
        iterations=max(10, runner.iterations // 3)
    ).format()
    sections["Fig. 9 — static-budget latency"] = fig9.run(
        runner, models=models
    ).format()
    sections["Fig. 10 — search time"] = fig10.run(
        runner, models=models
    ).format()
    sections["Fig. 11 — convergence"] = fig11.run(runner).format()
    sections["Fig. 12 — feasibility"] = fig12.run(
        runner, models=models
    ).format()
    sections["Table 2 — dynamic DSE"] = table2.run(
        runner, models=models
    ).format()
    sections["Table 3 — per-attempt reduction"] = table3.run(
        runner, models=models
    ).format()
    sections["Table 7 — mapping-space sizes"] = table7.run().format()
    if include_case_studies:
        sections["Fig. 14 — vs Edge TPU / Eyeriss"] = fig14.run(
            iterations=runner.iterations
        ).format()
        sections["Fig. 15 — black-box mappers"] = fig15.run().format()

    return FullReport(
        sections=sections,
        total_seconds=time.perf_counter() - started,
        iterations=runner.iterations,
    )
