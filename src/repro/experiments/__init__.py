"""Experiment harness: one module per paper figure/table (see DESIGN.md)."""

from repro.experiments import (  # noqa: F401
    fig3,
    fig4,
    fig9,
    fig10,
    fig11,
    fig12,
    fig14,
    fig15,
    table2,
    table3,
    table7,
)
from repro.experiments.pareto import ParetoFront, pareto_front
from repro.experiments.sensitivity import SensitivityReport, analyze_sensitivity
from repro.experiments.harness import (
    DYNAMIC_TECHNIQUES,
    PAPER_TECHNIQUES,
    ComparisonRunner,
    TechniqueSpec,
)
from repro.experiments.setup import (
    BASELINE_TECHNIQUES,
    edge_constraints,
    make_evaluator,
    run_baseline,
    run_explainable_dse,
)

__all__ = [
    "BASELINE_TECHNIQUES",
    "ComparisonRunner",
    "DYNAMIC_TECHNIQUES",
    "PAPER_TECHNIQUES",
    "ParetoFront",
    "SensitivityReport",
    "analyze_sensitivity",
    "pareto_front",
    "TechniqueSpec",
    "edge_constraints",
    "fig3",
    "fig4",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig14",
    "fig15",
    "make_evaluator",
    "run_baseline",
    "run_explainable_dse",
    "table2",
    "table3",
    "table7",
]
