"""Pareto-front extraction over multiple costs.

The framework minimizes a single objective (§4.2), but every run's trial
log records all costs, so multi-objective trade-offs (latency vs energy vs
area) can be recovered afterwards.  This module extracts the
non-dominated set from one or more runs — the standard post-processing
the paper points to for multi-objective extensions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.dse.result import DSEResult, TrialRecord
from repro.experiments.reporting import format_table
from repro.optim.archive import DEFAULT_OBJECTIVES, ParetoArchive

__all__ = [
    "ParetoFront",
    "archive_from_results",
    "dominates",
    "format_frontier",
    "pareto_front",
]


def dominates(
    a: TrialRecord, b: TrialRecord, cost_keys: Sequence[str]
) -> bool:
    """True when ``a`` is no worse than ``b`` on every cost and strictly
    better on at least one (all costs minimized)."""
    strictly_better = False
    for key in cost_keys:
        va = a.costs.get(key, math.inf)
        vb = b.costs.get(key, math.inf)
        if va > vb:
            return False
        if va < vb:
            strictly_better = True
    return strictly_better


@dataclass
class ParetoFront:
    """The non-dominated trials over the chosen costs."""

    cost_keys: Tuple[str, ...]
    points: List[TrialRecord]

    def __len__(self) -> int:
        return len(self.points)

    def format(self) -> str:
        rows = {}
        for trial in self.points:
            label = f"#{trial.index}"
            rows[label] = {
                key: trial.costs.get(key, math.inf) for key in self.cost_keys
            }
        return (
            f"Pareto front over {', '.join(self.cost_keys)} "
            f"({len(self.points)} points)\n"
            + format_table(rows, columns=list(self.cost_keys), row_header="trial")
        )


def pareto_front(
    results: Iterable[DSEResult],
    cost_keys: Sequence[str] = ("latency_ms", "energy_mj"),
    feasible_only: bool = True,
) -> ParetoFront:
    """Extract the non-dominated set from one or more runs' trials.

    Args:
        results: Runs whose trials to pool.
        cost_keys: Costs to trade off (all minimized).
        feasible_only: Restrict to all-constraints-feasible trials.
    """
    pool: List[TrialRecord] = []
    for result in results:
        for trial in result.trials:
            if feasible_only and not trial.feasible:
                continue
            if any(
                not math.isfinite(trial.costs.get(key, math.inf))
                for key in cost_keys
            ):
                continue
            pool.append(trial)

    front: List[TrialRecord] = []
    for candidate in pool:
        if any(dominates(other, candidate, cost_keys) for other in pool):
            continue
        # Deduplicate identical cost vectors.
        vector = tuple(candidate.costs.get(k) for k in cost_keys)
        if any(
            tuple(f.costs.get(k) for k in cost_keys) == vector for f in front
        ):
            continue
        front.append(candidate)
    front.sort(key=lambda t: t.costs.get(cost_keys[0], math.inf))
    return ParetoFront(cost_keys=tuple(cost_keys), points=front)


def archive_from_results(
    results: Iterable[DSEResult],
    capacity: Optional[int] = 64,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    journal_path=None,
) -> ParetoArchive:
    """Feed one or more runs' trial ledgers into a :class:`ParetoArchive`.

    Unlike :func:`pareto_front` (a one-shot post-hoc extraction), the
    archive is incremental and capacity-bounded, journals every insert
    and eviction when ``journal_path`` is given, and applies the same
    deterministic crowding prune the campaign service uses — so an
    offline rebuild matches the service's live frontier exactly.
    """
    archive = ParetoArchive(
        capacity=capacity,
        objectives=tuple(objectives),
        journal_path=journal_path,
        truncate=journal_path is not None,
    )
    for result in results:
        for trial in result.trials:
            archive.insert_trial(trial)
    archive.flush()
    return archive


def format_frontier(archive: ParetoArchive) -> str:
    """Render an archive's frontier as the standard experiments table."""
    rows = {}
    for entry in archive.frontier():
        rows[f"#{entry.seq}"] = {
            key: value
            for key, value in zip(archive.objectives, entry.vector)
        }
    return (
        f"Pareto frontier over {', '.join(archive.objectives)} "
        f"({len(archive)} points)\n"
        + format_table(
            rows, columns=list(archive.objectives), row_header="entry"
        )
    )
