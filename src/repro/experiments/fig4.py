"""Figure 4: toy two-parameter walkthrough (PEs x shared-memory size).

The paper contrasts HyperMapper 2.0 and Explainable-DSE on a deliberately
tiny problem — exploring only the PE count and the L2 scratchpad size for a
single ResNet CONV5_2 layer — showing that the black-box optimizer keeps
acquiring inefficient points while the bottleneck-guided search walks
straight to the efficient corner (first scaling PEs to balance compute,
then memory/bandwidth once DMA dominates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.accelerator import build_edge_design_space
from repro.arch.design_space import DesignSpace
from repro.arch.parameters import Parameter
from repro.core.dse.constraints import Constraint
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.experiments.setup import AREA_BUDGET_MM2, POWER_BUDGET_W
from repro.mapping.mapper import TopNMapper
from repro.optim.hypermapper import HyperMapperDSE
from repro.workloads.layers import Workload
from repro.workloads.registry import load_workload

__all__ = ["Fig4Result", "run", "build_toy_space"]

#: The single layer explored (ResNet CONV5_2-like: 512x512 3x3 at 7x7).
TOY_LAYER_MODEL = "resnet18"
TOY_LAYER_NAME = "conv5_x"


def build_toy_space() -> Tuple[DesignSpace, Dict[str, object]]:
    """Two free parameters (pes, l2_kb); the rest pinned mid-range.

    Returns the reduced design space and the pinned base point fragment.
    """
    full = build_edge_design_space()
    pinned = {
        "l1_bytes": 128,
        "offchip_bw_mbps": 8192,
        "noc_datawidth": 128,
    }
    for op in ("I", "W", "O", "PSUM"):
        pinned[f"phys_unicast_{op}"] = 16
        pinned[f"virt_unicast_{op}"] = 64
    params: List[Parameter] = [
        full.parameter("pes"),
        full.parameter("l2_kb"),
    ]
    params.extend(
        Parameter(name, (value,)) for name, value in pinned.items()
    )
    return DesignSpace(params), pinned


@dataclass
class Fig4Result:
    """Acquisition trajectories of both techniques on the toy space."""

    explainable_path: List[Tuple[int, int, float]]  # (pes, l2_kb, latency)
    hypermapper_path: List[Tuple[int, int, float]]
    explanations: List[str]

    def format(self) -> str:
        lines = ["Fig. 4 — toy DSE over (PEs, L2 kB) for ResNet CONV5_2-like layer"]
        lines.append("Explainable-DSE acquisitions:")
        for pes, l2, latency in self.explainable_path:
            lines.append(f"  PEs={pes:5d} L2={l2:5d}kB latency={latency:.4g}ms")
        lines.append("HyperMapper 2.0 acquisitions:")
        for pes, l2, latency in self.hypermapper_path:
            lines.append(f"  PEs={pes:5d} L2={l2:5d}kB latency={latency:.4g}ms")
        return "\n".join(lines)


def _single_layer_workload() -> Workload:
    layer = load_workload(TOY_LAYER_MODEL).layer(TOY_LAYER_NAME)
    return Workload(
        name=f"{TOY_LAYER_MODEL}.{TOY_LAYER_NAME}",
        layers=(layer,),
        total_layers=1,
        task="toy",
    )


def run(iterations: int = 25, top_n: int = 100, seed: int = 0) -> Fig4Result:
    """Run both techniques on the toy two-parameter problem."""
    space, _ = build_toy_space()
    workload = _single_layer_workload()
    constraints = [
        Constraint("area", "area_mm2", AREA_BUDGET_MM2),
        Constraint("power", "power_w", POWER_BUDGET_W),
    ]

    def _path(trials) -> List[Tuple[int, int, float]]:
        return [
            (t.point["pes"], t.point["l2_kb"], t.costs["latency_ms"])
            for t in trials
        ]

    explainable = ExplainableDSE(
        space,
        CostEvaluator(workload, TopNMapper(top_n=top_n)),
        constraints,
        max_evaluations=iterations,
    )
    explainable_result = explainable.run(
        {**space.minimum_point(), "pes": 64, "l2_kb": 64}
    )

    hypermapper = HyperMapperDSE(
        space,
        CostEvaluator(workload, TopNMapper(top_n=top_n)),
        constraints,
        max_evaluations=iterations,
        seed=seed,
        initial_samples=5,
    )
    hypermapper_result = hypermapper.run()

    return Fig4Result(
        explainable_path=_path(explainable_result.trials),
        hypermapper_path=_path(hypermapper_result.trials),
        explanations=explainable_result.explanations,
    )
