"""Figure 15: quality of mappings from different black-box mappers.

The paper compares random search, simulated annealing, a genetic
algorithm, and Bayesian optimization for mapping ResNet18 layers onto a
fixed hardware configuration (the minimum Table 1 point, per the paper's
footnote): random search reaches low-latency mappings for all layers,
SA fails on some, GA costs the most time.  The reproduction runs all four
(plus the dMazeRunner-style top-N mapper as the non-black-box reference)
per unique ResNet18 layer.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict

from repro.arch.accelerator import build_edge_design_space, config_from_point
from repro.experiments.reporting import format_table
from repro.mapping.blackbox_mappers import (
    AnnealingMapper,
    BayesianMapper,
    GeneticMapper,
)
from repro.mapping.mapper import RandomSearchMapper, TopNMapper
from repro.workloads.registry import load_workload

__all__ = ["Fig15Result", "run"]


@dataclass
class Fig15Result:
    """Per-layer best mapping latency per mapper, plus mapper runtimes."""

    latency_cycles: Dict[str, Dict[str, float]]  # [mapper][layer]
    seconds: Dict[str, float]

    def total_latency(self, mapper: str) -> float:
        values = self.latency_cycles[mapper].values()
        if any(not math.isfinite(v) for v in values):
            return math.inf
        return sum(values)

    def format(self) -> str:
        layers = list(next(iter(self.latency_cycles.values())).keys())
        lines = [
            "Fig. 15 — best mapping latency (cycles) per ResNet18 layer",
            format_table(
                self.latency_cycles, columns=layers, row_header="mapper"
            ),
            "",
            "Mapper runtime (s) and total latency over layers:",
        ]
        for mapper in self.latency_cycles:
            total = self.total_latency(mapper)
            rendered = f"{total:.4g}" if math.isfinite(total) else "failed to map some layers"
            lines.append(
                f"  {mapper}: {self.seconds[mapper]:.2f}s, total {rendered}"
            )
        return "\n".join(lines)


def run(
    trials: int = 150,
    bo_trials: int = 40,
    seed: int = 0,
    model: str = "resnet18",
) -> Fig15Result:
    """Run all mappers per unique layer on a mid-range configuration.

    ``bo_trials`` is separate because Bayesian optimization's surrogate
    refit makes full-budget runs prohibitively slow — exactly the paper's
    finding when it selected random search for codesign runs (§F).
    """
    space = build_edge_design_space()
    point = space.minimum_point()
    point.update(
        pes=1024,
        l1_bytes=256,
        l2_kb=512,
        offchip_bw_mbps=8192,
        noc_datawidth=128,
    )
    for op in ("I", "W", "O", "PSUM"):
        point[f"phys_unicast_{op}"] = 16
        point[f"virt_unicast_{op}"] = 64
    config = config_from_point(point)

    mappers = {
        "random": RandomSearchMapper(trials=trials, seed=seed),
        "annealing": AnnealingMapper(trials=trials, seed=seed),
        "genetic": GeneticMapper(trials=trials, seed=seed),
        "bayesian": BayesianMapper(trials=bo_trials, seed=seed),
        "top-n (dMazeRunner-like)": TopNMapper(top_n=trials),
    }
    workload = load_workload(model)
    latency: Dict[str, Dict[str, float]] = {name: {} for name in mappers}
    seconds: Dict[str, float] = {}
    for name, mapper in mappers.items():
        started = time.perf_counter()
        for layer in workload.layers:
            result = mapper(layer, config)
            latency[name][layer.name] = result.latency
        seconds[name] = time.perf_counter() - started
    return Fig15Result(latency_cycles=latency, seconds=seconds)
