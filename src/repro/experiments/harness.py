"""Shared experiment harness: memoized technique x model comparison runs.

Figures 9, 10, 12 and Tables 2, 3 all consume the same underlying runs
(one DSE per technique per model), so the harness memoizes them per
process: an 11-model x 10-technique comparison is executed once and every
experiment module reads from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.dse.result import DSEResult
from repro.experiments.setup import (
    BASELINE_TECHNIQUES,
    run_baseline,
    run_explainable_dse,
)
from repro.workloads.registry import MODEL_NAMES

__all__ = [
    "TechniqueSpec",
    "PAPER_TECHNIQUES",
    "DYNAMIC_TECHNIQUES",
    "ComparisonRunner",
]


@dataclass(frozen=True)
class TechniqueSpec:
    """One (optimizer, mapping mode) combination from the paper's tables."""

    label: str
    kind: str  # "explainable" or a BASELINE_TECHNIQUES key
    mapping_mode: str  # "fixed", "codesign", or "random-mapper"

    def __post_init__(self) -> None:
        if self.kind != "explainable" and self.kind not in BASELINE_TECHNIQUES:
            raise ValueError(f"unknown technique kind {self.kind!r}")


#: The ten technique rows of Fig. 9 / Table 2 (fixed-dataflow baselines,
#: the two black-box codesigns the paper found effective, and
#: Explainable-DSE codesign), plus Explainable-DSE with fixed dataflow.
PAPER_TECHNIQUES: Tuple[TechniqueSpec, ...] = (
    TechniqueSpec("Grid Search-FixDF", "grid", "fixed"),
    TechniqueSpec("Random Search-FixDF", "random", "fixed"),
    TechniqueSpec("Simulated Annealing-FixDF", "annealing", "fixed"),
    TechniqueSpec("Genetic Algorithm-FixDF", "genetic", "fixed"),
    TechniqueSpec("Bayesian Optimization-FixDF", "bayesian", "fixed"),
    TechniqueSpec("HyperMapper 2.0-FixDF", "hypermapper", "fixed"),
    TechniqueSpec("Reinforcement Learning-FixDF", "reinforcement", "fixed"),
    TechniqueSpec("Random Search-Codesign", "random", "random-mapper"),
    TechniqueSpec("HyperMapper 2.0-Codesign", "hypermapper", "random-mapper"),
    TechniqueSpec("ExplainableDSE-FixDF", "explainable", "fixed"),
    TechniqueSpec("ExplainableDSE-Codesign", "explainable", "codesign"),
)

#: Table 2 rows (the dynamic-DSE comparison drops ExplainableDSE-FixDF).
DYNAMIC_TECHNIQUES: Tuple[TechniqueSpec, ...] = tuple(
    spec for spec in PAPER_TECHNIQUES if spec.label != "ExplainableDSE-FixDF"
)


class ComparisonRunner:
    """Runs and memoizes (technique, model) DSE results.

    Args:
        iterations: Evaluation budget per run.
        top_n: Mapping budget of Explainable-DSE's codesign mapper.
        random_mapping_trials: Mapping trials of the black-box codesigns.
        seed: Seed shared by all stochastic optimizers.
    """

    def __init__(
        self,
        iterations: int = 60,
        top_n: int = 100,
        random_mapping_trials: int = 60,
        seed: int = 0,
    ):
        self.iterations = iterations
        self.top_n = top_n
        self.random_mapping_trials = random_mapping_trials
        self.seed = seed
        self._cache: Dict[Tuple[str, str], DSEResult] = {}

    def run(self, spec: TechniqueSpec, model: str) -> DSEResult:
        """Run (or fetch) one technique on one model."""
        key = (spec.label, model)
        if key not in self._cache:
            if spec.kind == "explainable":
                result = run_explainable_dse(
                    model,
                    iterations=self.iterations,
                    mapping_mode=spec.mapping_mode,
                    top_n=self.top_n,
                )
            else:
                result = run_baseline(
                    spec.kind,
                    model,
                    iterations=self.iterations,
                    mapping_mode=spec.mapping_mode,
                    seed=self.seed,
                    random_mapping_trials=self.random_mapping_trials,
                )
            result.technique = spec.label
            self._cache[key] = result
        return self._cache[key]

    def run_matrix(
        self,
        techniques: Sequence[TechniqueSpec],
        models: Optional[Sequence[str]] = None,
    ) -> Dict[str, Dict[str, DSEResult]]:
        """Run a technique x model matrix; returns [label][model] results."""
        models = list(models or MODEL_NAMES)
        out: Dict[str, Dict[str, DSEResult]] = {}
        for spec in techniques:
            out[spec.label] = {
                model: self.run(spec, model) for model in models
            }
        return out
