"""Shared experiment harness: memoized technique x model comparison runs.

Figures 9, 10, 12 and Tables 2, 3 all consume the same underlying runs
(one DSE per technique per model), so the harness memoizes them per
process: an 11-model x 10-technique comparison is executed once and every
experiment module reads from it.

Runs are independent of each other, so :meth:`ComparisonRunner.run_matrix`
can execute them on a ``REPRO_JOBS``-controlled worker pool
(:mod:`repro.perf.parallel`).  Results are collected in submission order
and every run is seeded independently of scheduling, so the parallel
matrix is identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dse.result import DSEResult
from repro.experiments.setup import (
    BASELINE_TECHNIQUES,
    run_baseline,
    run_explainable_dse,
)
from repro.perf.parallel import WorkerPool, resolve_jobs
from repro.workloads.registry import MODEL_NAMES

__all__ = [
    "TechniqueSpec",
    "PAPER_TECHNIQUES",
    "DYNAMIC_TECHNIQUES",
    "ComparisonRunner",
]


@dataclass(frozen=True)
class TechniqueSpec:
    """One (optimizer, mapping mode) combination from the paper's tables."""

    label: str
    kind: str  # "explainable" or a BASELINE_TECHNIQUES key
    mapping_mode: str  # "fixed", "codesign", or "random-mapper"

    def __post_init__(self) -> None:
        if self.kind != "explainable" and self.kind not in BASELINE_TECHNIQUES:
            raise ValueError(f"unknown technique kind {self.kind!r}")


#: The ten technique rows of Fig. 9 / Table 2 (fixed-dataflow baselines,
#: the two black-box codesigns the paper found effective, and
#: Explainable-DSE codesign), plus Explainable-DSE with fixed dataflow.
PAPER_TECHNIQUES: Tuple[TechniqueSpec, ...] = (
    TechniqueSpec("Grid Search-FixDF", "grid", "fixed"),
    TechniqueSpec("Random Search-FixDF", "random", "fixed"),
    TechniqueSpec("Simulated Annealing-FixDF", "annealing", "fixed"),
    TechniqueSpec("Genetic Algorithm-FixDF", "genetic", "fixed"),
    TechniqueSpec("Bayesian Optimization-FixDF", "bayesian", "fixed"),
    TechniqueSpec("HyperMapper 2.0-FixDF", "hypermapper", "fixed"),
    TechniqueSpec("Reinforcement Learning-FixDF", "reinforcement", "fixed"),
    TechniqueSpec("Random Search-Codesign", "random", "random-mapper"),
    TechniqueSpec("HyperMapper 2.0-Codesign", "hypermapper", "random-mapper"),
    TechniqueSpec("ExplainableDSE-FixDF", "explainable", "fixed"),
    TechniqueSpec("ExplainableDSE-Codesign", "explainable", "codesign"),
)

#: Table 2 rows (the dynamic-DSE comparison drops ExplainableDSE-FixDF).
DYNAMIC_TECHNIQUES: Tuple[TechniqueSpec, ...] = tuple(
    spec for spec in PAPER_TECHNIQUES if spec.label != "ExplainableDSE-FixDF"
)


def _execute_spec(
    spec: TechniqueSpec,
    model: str,
    iterations: int,
    top_n: int,
    random_mapping_trials: int,
    seed: int,
) -> DSEResult:
    """Run one (technique, model) pair; module-level so worker processes
    can pickle the call."""
    if spec.kind == "explainable":
        result = run_explainable_dse(
            model,
            iterations=iterations,
            mapping_mode=spec.mapping_mode,
            top_n=top_n,
        )
    else:
        result = run_baseline(
            spec.kind,
            model,
            iterations=iterations,
            mapping_mode=spec.mapping_mode,
            seed=seed,
            random_mapping_trials=random_mapping_trials,
        )
    result.technique = spec.label
    return result


def _run_pair_job(
    iterations: int,
    top_n: int,
    random_mapping_trials: int,
    seed: int,
    pair: Tuple[TechniqueSpec, str],
) -> DSEResult:
    """Picklable worker wrapper over :func:`_execute_spec`."""
    spec, model = pair
    return _execute_spec(
        spec, model, iterations, top_n, random_mapping_trials, seed
    )


class ComparisonRunner:
    """Runs and memoizes (technique, model) DSE results.

    Args:
        iterations: Evaluation budget per run.
        top_n: Mapping budget of Explainable-DSE's codesign mapper.
        random_mapping_trials: Mapping trials of the black-box codesigns.
        seed: Seed shared by all stochastic optimizers.
        jobs: Worker count for :meth:`run_matrix`; None reads
            ``REPRO_JOBS`` (default 1 = serial).
    """

    def __init__(
        self,
        iterations: int = 60,
        top_n: int = 100,
        random_mapping_trials: int = 60,
        seed: int = 0,
        jobs: Optional[object] = None,
    ):
        self.iterations = iterations
        self.top_n = top_n
        self.random_mapping_trials = random_mapping_trials
        self.seed = seed
        self.jobs = resolve_jobs(jobs)
        self._cache: Dict[Tuple[str, str], DSEResult] = {}

    def _execute(self, spec: TechniqueSpec, model: str) -> DSEResult:
        return _execute_spec(
            spec,
            model,
            self.iterations,
            self.top_n,
            self.random_mapping_trials,
            self.seed,
        )

    def run(self, spec: TechniqueSpec, model: str) -> DSEResult:
        """Run (or fetch) one technique on one model."""
        key = (spec.label, model)
        if key not in self._cache:
            self._cache[key] = self._execute(spec, model)
        return self._cache[key]

    def run_matrix(
        self,
        techniques: Sequence[TechniqueSpec],
        models: Optional[Sequence[str]] = None,
        jobs: Optional[object] = None,
    ) -> Dict[str, Dict[str, DSEResult]]:
        """Run a technique x model matrix; returns [label][model] results.

        With ``jobs > 1`` the not-yet-memoized (technique, model) pairs
        execute concurrently on a worker pool; each run is independent
        and internally seeded, so results match the serial path.
        """
        models = list(models or MODEL_NAMES)
        jobs = resolve_jobs(self.jobs if jobs is None else jobs)
        pending: List[Tuple[TechniqueSpec, str]] = [
            (spec, model)
            for spec in techniques
            for model in models
            if (spec.label, model) not in self._cache
        ]
        if jobs > 1 and len(pending) > 1:
            job = partial(
                _run_pair_job,
                self.iterations,
                self.top_n,
                self.random_mapping_trials,
                self.seed,
            )
            with WorkerPool(jobs=jobs) as pool:
                results = pool.map(job, pending)
            for (spec, model), result in zip(pending, results):
                self._cache[(spec.label, model)] = result
        out: Dict[str, Dict[str, DSEResult]] = {}
        for spec in techniques:
            out[spec.label] = {
                model: self.run(spec, model) for model in models
            }
        return out
