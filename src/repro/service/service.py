"""The campaign service: async DSE-as-a-service over one shared fleet.

:class:`CampaignService` accepts campaign submissions from multiple
tenants and interleaves their acquisition attempts over the process-wide
shared-memory worker fleet (:func:`repro.perf.shm_fleet.shared_fleet` is
the default executor plane: every campaign's fused blocks dispatch to
the same warm workers).  Scheduling is delegated to the deterministic
:class:`~repro.service.scheduler.CampaignScheduler`; execution is
delegated to :class:`~repro.service.machine.CampaignStateMachine`, the
same object a straight ``ExplainableDSE.run()`` drives — so a campaign
that ran through the service is bit-identical to one that ran alone.

Slices execute strictly one at a time (``asyncio.to_thread`` keeps the
event loop responsive while a slice computes): parallelism comes from
the fleet *within* a step, and the one-slice-at-a-time rule is what
makes the interleaving — and therefore every journal — deterministic.

Every campaign gets its own spool directory keyed by campaign id::

    <spool>/<campaign_id>/spec.json           submission record
    <spool>/<campaign_id>/journal.jsonl       telemetry journal
    <spool>/<campaign_id>/journal.jsonl.ckpt  resumable checkpoint
    <spool>/<campaign_id>/state.json          service-level status
    <spool>/<campaign_id>/frontier.jsonl      Pareto-archive journal

Per-campaign journal files are what let N campaigns trace concurrently:
:class:`~repro.telemetry.sinks.JsonlSink` assumes one campaign per file
(its resume truncation rewinds the whole file), so the service never
shares a journal between campaigns and takes the sink's exclusive lock
against accidental collisions.  A service process that dies (SIGTERM,
SIGKILL, power loss) restarts from the spool: campaigns resume from
their checkpoints and finish with the same fingerprints an uninterrupted
service — or a solo run — would produce.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import time
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, AsyncIterator, Callable, Dict, List, Optional

from repro.resilience.errors import WorkerCrashError
from repro.resilience.fault_injection import attempt_scope, inject
from repro.service.machine import (
    CampaignState,
    CampaignStateMachine,
    result_fingerprint,
)
from repro.service.scheduler import CampaignScheduler, SchedulerError

__all__ = [
    "CampaignSpec",
    "CampaignService",
    "ServiceError",
    "UnknownCampaignError",
    "ServiceOverloadError",
    "default_campaign_factory",
]


class ServiceError(RuntimeError):
    """An invalid service operation (wrong state, bad argument).

    ``http_status`` is the explicit HTTP mapping the endpoint uses —
    no substring matching on messages.  Subclasses refine it.
    """

    http_status = 409


class UnknownCampaignError(ServiceError):
    """A campaign (or tenant) id the service has never seen."""

    http_status = 404


class ServiceOverloadError(ServiceError):
    """A submission shed by admission control.

    ``http_status`` is 429 when the *tenant's* in-flight cap was hit
    (the tenant's own backlog is the problem) and 503 when the global
    waiting queue is full (the service as a whole is overloaded).
    ``retry_after`` is the server's backoff hint in seconds, surfaced
    as the ``Retry-After`` response header.
    """

    def __init__(self, message: str, *, status: int, retry_after: float):
        super().__init__(message)
        self.http_status = int(status)
        self.retry_after = float(retry_after)


@dataclass
class CampaignSpec:
    """One campaign submission.

    ``shm_eval`` defaults on: service campaigns share the process-wide
    warm worker fleet unless a submission opts out.  ``tenant_quota``
    is the tenant's total step budget (``None`` defers to the service
    default, ``0`` means unlimited) and ``tenant_weight`` scales the
    steps granted per scheduler turn; both update the tenant record at
    submission time.

    ``deadline_s`` is the campaign's wall-clock *processing* budget:
    the cumulative time the service may spend executing its slices.
    It is checked only at slice/attempt boundaries; a campaign that
    overruns settles as ``expired`` through a forced checkpoint, so
    :meth:`CampaignService.extend_deadline` (or a service restart plus
    an extension) completes it bit-identically later.

    ``idempotency_key`` makes submission at-most-once: the service
    remembers the key in the spooled submission record, and a retried
    submit with the same key returns the existing campaign id instead
    of starting a second campaign.
    """

    model: str
    tenant: str = "default"
    iterations: int = 40
    mapping_mode: str = "codesign"
    objective: str = "latency"
    top_n: int = 150
    tenant_weight: Optional[int] = None
    tenant_quota: Optional[int] = None
    shm_eval: bool = True
    deadline_s: Optional[float] = None
    idempotency_key: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def default_campaign_factory(spec: CampaignSpec):
    """Build the :class:`ExplainableDSE` for one submission.

    Edge design space, Table 1 constraints, and a fresh evaluator per
    campaign (own mapping cache — interleaved campaigns must not warm
    each other's caches, or their journals would diverge from solo
    runs).  ``shm_eval=True`` routes fused blocks to the shared fleet.
    """
    # Heavy imports stay out of module import time (and out of the
    # machine/scheduler import graph).
    from repro.arch.accelerator import build_edge_design_space
    from repro.core.dse.explainable import ExplainableDSE
    from repro.experiments.setup import edge_constraints, make_evaluator
    from repro.perf.mapping_cache import MappingCache

    evaluator = make_evaluator(
        spec.model,
        mapping_mode=spec.mapping_mode,
        top_n=spec.top_n,
        objective=spec.objective,
        shm_eval=spec.shm_eval,
        # An explicit private cache: CachingMapper would otherwise fall
        # back to the process-global shared_cache(), whose entry gauge
        # (and, for same-model campaigns, hits) leaks into RunSummary
        # and breaks byte-identity with solo runs.
        mapping_cache=MappingCache(),
    )
    return ExplainableDSE(
        build_edge_design_space(),
        evaluator,
        edge_constraints(spec.model),
        max_evaluations=spec.iterations,
    )


@dataclass
class _CampaignRecord:
    """Service-side bookkeeping for one campaign."""

    campaign_id: str
    spec: CampaignSpec
    machine: Optional[CampaignStateMachine] = None
    sink: Any = None
    status: str = "queued"
    error: Optional[str] = None
    cancel_requested: bool = False
    steps_done: int = 0
    slices: int = 0
    fingerprint: Optional[str] = None
    outcome: Optional[Dict[str, Any]] = None
    done_event: Optional[asyncio.Event] = None
    #: Runtime deadline budget (starts as ``spec.deadline_s``; deadline
    #: extensions move it without rewriting the submission record).
    deadline_s: Optional[float] = None
    #: Cumulative slice wall time charged against the deadline.
    elapsed_s: float = 0.0
    #: Per-record spool-write sequence (the fault-injection attempt).
    persist_seq: int = 0


#: Campaign states the service reports as settled.  ``expired`` is
#: terminal for waiting/recovery purposes but reversible: a fresh
#: deadline re-queues the campaign from its forced checkpoint.
_TERMINAL = {"finished", "cancelled", "failed", "expired"}


class CampaignService:
    """Async multi-tenant campaign service over one shared worker fleet.

    Args:
        spool_dir: Root of the per-campaign spool (created on start;
            restarting on the same spool resumes unfinished campaigns).
        max_concurrent / quantum / default_quota: Scheduler policy
            (``None`` reads the ``REPRO_SERVICE_*`` / ``REPRO_TENANT_*``
            knobs).
        max_queue / tenant_inflight: Admission control —
            submissions past the global waiting-queue bound are shed
            with 503, past the per-tenant in-flight cap with 429
            (``None`` reads ``REPRO_SERVICE_MAX_QUEUE`` /
            ``REPRO_SERVICE_TENANT_INFLIGHT``).
        overload_slice_s: Slice-latency watermark in seconds; when the
            exponentially weighted moving average of slice wall time
            exceeds it, the scheduler quantum is clamped to one attempt
            (load is *absorbed* by finer slicing before any shedding
            happens).
        campaign_factory: ``spec -> ExplainableDSE`` (default:
            :func:`default_campaign_factory`).
    """

    def __init__(
        self,
        spool_dir: os.PathLike,
        *,
        max_concurrent: Optional[int] = None,
        quantum: Optional[int] = None,
        default_quota: Optional[int] = "env",
        max_queue: Optional[int] = None,
        tenant_inflight: Optional[int] = None,
        overload_slice_s: float = 2.0,
        campaign_factory: Optional[Callable] = None,
    ):
        from repro.perf.knobs import (
            service_max_queue,
            service_tenant_inflight,
        )

        self.spool = Path(spool_dir)
        self.scheduler = CampaignScheduler(
            quantum=quantum,
            max_concurrent=max_concurrent,
            default_quota=default_quota,
        )
        self.max_queue = service_max_queue(max_queue)
        self.tenant_inflight = service_tenant_inflight(tenant_inflight)
        self.overload_slice_s = float(overload_slice_s)
        self._factory = campaign_factory or default_campaign_factory
        self._records: Dict[str, _CampaignRecord] = {}
        self._counter = 0
        self._wake: Optional[asyncio.Event] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._stopping = False
        #: (campaign_id, steps) slices in dispatch order, for tests.
        self.slice_log: List[tuple] = []
        #: idempotency key -> campaign id (rebuilt from the spool).
        self._idempotency: Dict[str, str] = {}
        #: idempotency key -> times a submit replayed it (the ambient
        #: fault-injection attempt, so injected submit faults re-roll on
        #: client retries exactly like evaluation retries re-roll).
        self._submit_replays: Dict[str, int] = {}
        #: EWMA of slice wall seconds (None until the first slice).
        self._ewma_slice_s: Optional[float] = None
        #: Resilience counters surfaced through ``healthz()``.
        self.counters: Dict[str, int] = {
            "shed_429": 0,
            "shed_503": 0,
            "expired": 0,
            "deadline_extensions": 0,
            "dedup_hits": 0,
            "slice_faults": 0,
            "spool_write_faults": 0,
            "fleet_restarts": 0,
            "fleet_wedged": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Create the spool, recover prior campaigns, start scheduling."""
        if self._loop_task is not None:
            raise ServiceError("service already started")
        self.spool.mkdir(parents=True, exist_ok=True)
        self._wake = asyncio.Event()
        self._stopping = False
        self._recover()
        self._loop_task = asyncio.create_task(self._run_loop())

    async def stop(self) -> None:
        """Stop at the next slice boundary; every running campaign is
        left checkpointed and resumable (a later :meth:`start` on the
        same spool continues it)."""
        if self._loop_task is None:
            return
        self._stopping = True
        self._wake.set()
        await self._loop_task
        self._loop_task = None
        for record in self._records.values():
            self._close_sink(record)

    async def drained(self) -> None:
        """Wait until no submitted campaign can still make progress."""
        while True:
            if self.scheduler.idle or self.scheduler.starved:
                return
            await asyncio.sleep(0.02)

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild records from the spool after a restart (or crash).

        Every spool file is treated as possibly torn: the service's own
        writes are atomic (write-temp/rename), but a SIGKILL may still
        leave artifacts from older writers or a full disk.  A corrupt
        ``tenants.json`` starts tenants fresh; a corrupt ``state.json``
        degrades to "unknown, resume from checkpoint"; a corrupt
        ``spec.json`` means the campaign cannot be rebuilt and is
        skipped with a warning (its directory is preserved for
        inspection).
        """
        tenants_path = self.spool / "tenants.json"
        if tenants_path.exists():
            try:
                entries = json.loads(tenants_path.read_text())
            except (json.JSONDecodeError, OSError) as exc:
                warnings.warn(
                    f"ignoring corrupt tenants record {tenants_path}: "
                    f"{exc}",
                    RuntimeWarning,
                )
                entries = []
            for entry in entries:
                tenant = self.scheduler.register_tenant(
                    entry["tenant"],
                    weight=entry.get("weight"),
                    quota=entry.get("quota"),
                )
                tenant.steps_used = int(entry.get("steps_used", 0))
        for path in sorted(self.spool.iterdir()):
            spec_path = path / "spec.json"
            if not spec_path.is_file():
                continue
            campaign_id = path.name
            try:
                spec = CampaignSpec.from_dict(
                    json.loads(spec_path.read_text())
                )
            except (json.JSONDecodeError, OSError, TypeError) as exc:
                warnings.warn(
                    f"skipping campaign {campaign_id}: corrupt submission "
                    f"record ({exc})",
                    RuntimeWarning,
                )
                continue
            record = _CampaignRecord(campaign_id=campaign_id, spec=spec)
            record.done_event = asyncio.Event()
            record.deadline_s = spec.deadline_s
            state_path = path / "state.json"
            if state_path.exists():
                try:
                    state = json.loads(state_path.read_text())
                except (json.JSONDecodeError, OSError):
                    state = {}
                record.status = state.get("status", "queued")
                record.error = state.get("error")
                record.steps_done = int(state.get("steps_done", 0))
                record.fingerprint = state.get("fingerprint")
                record.outcome = state.get("outcome")
                record.elapsed_s = float(state.get("elapsed_s", 0.0))
                if "deadline_s" in state:
                    record.deadline_s = state["deadline_s"]
            self._records[campaign_id] = record
            self._counter = max(self._counter, int(campaign_id[1:]) + 1)
            if spec.idempotency_key:
                self._idempotency[spec.idempotency_key] = campaign_id
            if record.status in _TERMINAL:
                record.done_event.set()
                continue
            record.status = "queued"
            record.machine = None  # rebuilt (and resumed) at first slice
            self._register_tenant(spec)
            self.scheduler.submit(campaign_id, spec.tenant)

    # -- API -----------------------------------------------------------------

    def _register_tenant(self, spec: CampaignSpec) -> None:
        quota = "default"
        if spec.tenant_quota is not None:
            quota = None if spec.tenant_quota == 0 else spec.tenant_quota
        self.scheduler.register_tenant(
            spec.tenant, weight=spec.tenant_weight, quota=quota
        )

    def _retry_after_hint(self) -> float:
        """Server backoff hint for shed submissions: the expected time
        to drain one queue position, floored at 1s and capped at 60s."""
        per_slice = self._ewma_slice_s if self._ewma_slice_s else 0.5
        backlog = self.scheduler.waiting_count + 1
        return float(min(60, max(1, math.ceil(per_slice * backlog))))

    async def submit(self, spec: CampaignSpec) -> str:
        """Queue a campaign; returns its id (``c0001``, ``c0002``, ...).

        Order of checks matters for at-most-once semantics: an
        idempotent *replay* short-circuits before admission control, so
        a client retrying a submission that already landed can never be
        shed for the load its own first attempt created.  Fresh
        submissions are shed with 429 when the tenant's in-flight cap is
        hit, 503 when the global waiting queue is full.  The spooled
        submission record is durable *before* the ``submit`` fault site
        fires, so a kill there leaves a campaign the client's idempotent
        retry re-discovers.
        """
        if self._loop_task is None:
            raise ServiceError("service is not running")
        key = spec.idempotency_key
        if key and key in self._idempotency:
            self.counters["dedup_hits"] += 1
            replay = self._submit_replays.get(key, 0) + 1
            self._submit_replays[key] = replay
            # The original submit may have crashed between queueing the
            # campaign and waking the loop: re-wake on every replay.
            self._wake.set()
            with attempt_scope(replay, allow_kill=True):
                inject("submit", key=key)
            return self._idempotency[key]
        inflight = sum(
            1
            for r in self._records.values()
            if r.spec.tenant == spec.tenant and r.status not in _TERMINAL
        )
        if inflight >= self.tenant_inflight:
            self.counters["shed_429"] += 1
            raise ServiceOverloadError(
                f"tenant {spec.tenant!r} has {inflight} campaigns in "
                f"flight (cap {self.tenant_inflight})",
                status=429,
                retry_after=self._retry_after_hint(),
            )
        if self.scheduler.waiting_count >= self.max_queue:
            self.counters["shed_503"] += 1
            raise ServiceOverloadError(
                f"waiting queue is full "
                f"({self.scheduler.waiting_count}/{self.max_queue})",
                status=503,
                retry_after=self._retry_after_hint(),
            )
        campaign_id = f"c{self._counter:04d}"
        self._counter += 1
        campaign_dir = self.spool / campaign_id
        campaign_dir.mkdir(parents=True)
        self._write_atomic(
            campaign_dir / "spec.json", json.dumps(spec.to_dict(), indent=2)
        )
        record = _CampaignRecord(campaign_id=campaign_id, spec=spec)
        record.done_event = asyncio.Event()
        record.deadline_s = spec.deadline_s
        self._records[campaign_id] = record
        if key:
            self._idempotency[key] = campaign_id
            self._submit_replays.setdefault(key, 0)
        self._register_tenant(spec)
        self.scheduler.submit(campaign_id, spec.tenant)
        self._persist_state(record)
        self._wake.set()
        with attempt_scope(0, allow_kill=True):
            inject("submit", key=key or campaign_id)
        return campaign_id

    def _record(self, campaign_id: str) -> _CampaignRecord:
        try:
            return self._records[campaign_id]
        except KeyError:
            raise UnknownCampaignError(
                f"unknown campaign {campaign_id!r}"
            ) from None

    def status(self, campaign_id: str) -> Dict[str, Any]:
        """Campaign status, including the resilience layer's SLO view."""
        record = self._record(campaign_id)
        tenant = self.scheduler.tenant(record.spec.tenant)
        status = record.status
        if status not in _TERMINAL and tenant.quota_exhausted:
            status = "starved"
        remaining = None
        if record.deadline_s is not None:
            remaining = max(0.0, record.deadline_s - record.elapsed_s)
        payload = {
            "campaign_id": campaign_id,
            "tenant": record.spec.tenant,
            "model": record.spec.model,
            "status": status,
            "steps_done": record.steps_done,
            "slices": record.slices,
            "error": record.error,
            "deadline_s": record.deadline_s,
            "elapsed_s": record.elapsed_s,
            "deadline_remaining_s": remaining,
            "tenant_state": tenant.as_dict(),
            "slo": record.machine.slo_snapshot() if record.machine else None,
        }
        if record.machine is not None:
            payload["consumed"] = record.machine.consumed
        return payload

    def extend_deadline(
        self, campaign_id: str, extra_s: float
    ) -> Dict[str, Any]:
        """Grant more processing budget.  An ``expired`` campaign
        rejoins the scheduler queue and resumes bit-identically from
        its forced checkpoint; a live campaign just gets more runway."""
        record = self._record(campaign_id)
        extra = float(extra_s)
        if not extra > 0:
            raise ServiceError("deadline extension must be positive")
        if record.status in _TERMINAL and record.status != "expired":
            raise ServiceError(
                f"campaign {campaign_id!r} is already {record.status}"
            )
        if record.deadline_s is None:
            record.deadline_s = record.elapsed_s + extra
        else:
            record.deadline_s = max(
                record.deadline_s, record.elapsed_s
            ) + extra
        self.counters["deadline_extensions"] += 1
        if record.status == "expired":
            record.status = "queued"
            record.machine = None  # rebuilt from the forced checkpoint
            record.done_event.clear()
            try:
                self.scheduler.readmit(campaign_id)
            except SchedulerError:
                # Expired before this service incarnation ever saw it
                # (recovered-terminal): submit it like a new campaign.
                self._register_tenant(record.spec)
                self.scheduler.submit(campaign_id, record.spec.tenant)
        self._persist_state(record)
        if self._wake is not None:
            self._wake.set()
        return self.status(campaign_id)

    def healthz(self) -> Dict[str, Any]:
        """Service health: load, overload state, resilience counters,
        and the shared fleet's worker census (``None`` when no shared
        fleet has been spawned in this process)."""
        from repro.perf import shm_fleet as _shm

        fleet = getattr(_shm, "_SHARED", None)
        active = sum(
            1 for r in self._records.values() if r.status not in _TERMINAL
        )
        return {
            "status": "overloaded" if self.scheduler.pressure else "ok",
            "campaigns": len(self._records),
            "active": active,
            "waiting": self.scheduler.waiting_count,
            "max_queue": self.max_queue,
            "tenant_inflight": self.tenant_inflight,
            "ewma_slice_s": self._ewma_slice_s,
            "overload_slice_s": self.overload_slice_s,
            "pressure": self.scheduler.pressure,
            "counters": dict(self.counters),
            "fleet": fleet.health() if fleet is not None else None,
        }

    def list_campaigns(self) -> List[Dict[str, Any]]:
        return [self.status(cid) for cid in sorted(self._records)]

    async def cancel(self, campaign_id: str) -> Dict[str, Any]:
        """Cancel at the next attempt boundary (immediate when queued)."""
        record = self._record(campaign_id)
        if record.status in _TERMINAL:
            raise ServiceError(
                f"campaign {campaign_id!r} is already {record.status}"
            )
        record.cancel_requested = True
        if record.machine is None and record.status == "queued":
            try:
                phase = self.scheduler.campaign_phase(campaign_id)
            except SchedulerError:
                phase = "waiting"
            if phase == "waiting":
                self.scheduler.remove(campaign_id)
                self._settle(record, "cancelled")
                record.done_event.set()
        self._wake.set()
        return self.status(campaign_id)

    def result(self, campaign_id: str) -> Dict[str, Any]:
        """The finished campaign's outcome (fingerprint + best point)."""
        record = self._record(campaign_id)
        if record.status != "finished" or record.outcome is None:
            raise ServiceError(
                f"no result: campaign {campaign_id!r} is {record.status}"
            )
        return dict(record.outcome, fingerprint=record.fingerprint)

    def frontier(self, campaign_id: str) -> Dict[str, Any]:
        """The campaign's Pareto frontier over the default objectives.

        Live campaigns read the in-memory archive; settled or recovered
        campaigns replay ``frontier.jsonl`` from the spool, so the
        answer is identical across a service restart.
        """
        from repro.optim.archive import DEFAULT_OBJECTIVES, ParetoArchive

        record = self._record(campaign_id)
        machine = record.machine
        if machine is not None and machine.archive is not None:
            snapshot = machine.archive.snapshot()
        else:
            path = self.spool / campaign_id / "frontier.jsonl"
            if path.exists():
                snapshot = ParetoArchive.replay(path).snapshot()
            else:
                snapshot = []
        return {
            "campaign_id": campaign_id,
            "objectives": list(DEFAULT_OBJECTIVES),
            "size": len(snapshot),
            "frontier": snapshot,
        }

    async def wait(self, campaign_id: str) -> Dict[str, Any]:
        """Wait until the campaign settles; returns its final status."""
        record = self._record(campaign_id)
        await record.done_event.wait()
        return self.status(campaign_id)

    def journal_path(self, campaign_id: str) -> Path:
        self._record(campaign_id)
        return self.spool / campaign_id / "journal.jsonl"

    async def stream_journal(
        self, campaign_id: str, offset: int = 0, follow: bool = False
    ) -> AsyncIterator[str]:
        """Yield journal lines from ``offset`` (a line number).

        With ``follow=True`` the stream tails the file until the
        campaign settles; journals only grow at attempt boundaries, so
        a follower sees whole attempts, never torn events.
        """
        record = self._record(campaign_id)
        path = self.journal_path(campaign_id)
        position = offset
        while True:
            lines = []
            if path.exists():
                with open(path) as handle:
                    lines = handle.read().splitlines()
            for line in lines[position:]:
                yield line
            position = max(position, len(lines))
            if not follow or record.done_event.is_set():
                return
            await asyncio.sleep(0.05)

    # -- scheduling loop -----------------------------------------------------

    async def _run_loop(self) -> None:
        while not self._stopping:
            self._sweep_cancellations()
            decision = self.scheduler.next_slice()
            if decision is None:
                self._wake.clear()
                if self._stopping:
                    return
                await self._wake.wait()
                continue
            record = self._records[decision.campaign_id]
            if self._deadline_expired(record):
                # The budget ran out while the campaign sat in the
                # queue; it is already at an attempt boundary, so park
                # it without running the slice.
                self.scheduler.report(decision.campaign_id, 0, done=True)
                self._expire(record)
                self._persist_tenants()
                continue
            self.slice_log.append((decision.campaign_id, decision.steps))
            record.slices += 1
            try:
                # The ambient attempt is the campaign's slice index, so
                # rate-based faults re-roll on the rescheduled slice.
                with attempt_scope(record.slices, allow_kill=True):
                    inject("slice", key=decision.campaign_id)
            except WorkerCrashError:
                self.counters["slice_faults"] += 1
                self.scheduler.report(decision.campaign_id, 0, done=False)
                continue
            started = time.monotonic()
            steps_done, done = await asyncio.to_thread(
                self._run_slice, record, decision.steps
            )
            self._charge_slice(record, time.monotonic() - started)
            record.steps_done += steps_done
            self.scheduler.report(
                decision.campaign_id, steps_done, done=done
            )
            if not done and self._deadline_expired(record):
                self.scheduler.remove(record.campaign_id)
                self._expire(record)
            self._persist_state(record)
            self._persist_tenants()
            if record.status in _TERMINAL:
                record.done_event.set()
            self._heartbeat_fleet()

    # -- deadlines & overload ------------------------------------------------

    @staticmethod
    def _deadline_expired(record: _CampaignRecord) -> bool:
        return (
            record.deadline_s is not None
            and record.elapsed_s >= record.deadline_s
        )

    def _expire(self, record: _CampaignRecord) -> None:
        """Settle an over-budget campaign as ``expired``.

        Runs on the loop thread between slices, so the machine is
        parked at an attempt boundary: the last slice's
        ``machine.pause()`` already forced its checkpoint to disk.
        Dropping the machine (its sink is closed by ``_settle``) means a
        deadline extension rebuilds it from that checkpoint with a
        fresh sink — the same path a service restart takes — which is
        exactly why resuming later is bit-identical.
        """
        record.machine = None
        self.counters["expired"] += 1
        self._settle(record, "expired")
        record.done_event.set()

    def _charge_slice(self, record: _CampaignRecord, elapsed: float) -> None:
        """Charge slice wall time to the campaign's deadline budget and
        to the overload watermark's moving average."""
        record.elapsed_s += elapsed
        if self._ewma_slice_s is None:
            self._ewma_slice_s = elapsed
        else:
            self._ewma_slice_s = 0.3 * elapsed + 0.7 * self._ewma_slice_s
        self.scheduler.pressure = self._ewma_slice_s > self.overload_slice_s

    def _heartbeat_fleet(self) -> None:
        """Between slices, ping the shared fleet's workers and replace
        dead or wedged ones.  The fleet is strictly idle here (slices
        run one at a time and each drains its own dispatches), so any
        worker that fails to answer a ping is wedged, not busy."""
        from repro.perf import shm_fleet as _shm

        fleet = getattr(_shm, "_SHARED", None)
        if fleet is None:
            return
        try:
            report = fleet.heartbeat()
        except Exception as exc:  # pragma: no cover - defensive
            warnings.warn(
                f"fleet heartbeat failed: {type(exc).__name__}: {exc}",
                RuntimeWarning,
            )
            return
        self.counters["fleet_wedged"] += report.get("wedged", 0)
        self.counters["fleet_restarts"] += report.get("respawned", 0)

    def _sweep_cancellations(self) -> None:
        """Settle cancel requests for campaigns not currently sliced —
        queued ones, and parked ones a starved tenant would never get
        another slice for.  Runs on the loop thread between slices, so
        no machine is concurrently executing."""
        for record in self._records.values():
            if not record.cancel_requested or record.status in _TERMINAL:
                continue
            machine = record.machine
            if machine is not None and not machine.state.terminal:
                machine.cancel()
            try:
                self.scheduler.remove(record.campaign_id)
            except SchedulerError:
                pass
            self._settle(record, "cancelled")
            record.done_event.set()

    def _run_slice(self, record: _CampaignRecord, steps: int):
        """Run up to ``steps`` attempts of one campaign (worker thread).

        Returns ``(steps_done, done)``.  The machine is always left at
        an attempt boundary: FINISHED/CANCELLED/FAILED, or paused into
        CHECKPOINTED with its snapshot on disk.
        """
        done_steps = 0
        slice_start = time.monotonic()
        budget = None
        if record.deadline_s is not None:
            budget = max(0.0, record.deadline_s - record.elapsed_s)
        try:
            machine = record.machine
            if machine is None:
                machine = record.machine = self._build_machine(record)
            if machine.state is CampaignState.PENDING:
                record.status = "running"
                machine.start()
            elif machine.state is CampaignState.CHECKPOINTED:
                record.status = "running"
                machine.resume()
            while (
                machine.state is CampaignState.RUNNING
                and done_steps < steps
                and not record.cancel_requested
            ):
                machine.step()
                done_steps += 1
                # Deadlines are honored at attempt boundaries only: a
                # fat quantum stops early rather than overrunning the
                # budget by a whole slice.
                if budget is not None and (
                    time.monotonic() - slice_start >= budget
                ):
                    break
            if record.cancel_requested and not machine.state.terminal:
                machine.cancel()
            elif machine.state is CampaignState.RUNNING:
                machine.pause()
                record.status = "checkpointed"
        except BaseException as exc:
            record.error = f"{type(exc).__name__}: {exc}"
            self._settle(record, "failed")
            return done_steps, True
        if machine.state is CampaignState.FINISHED:
            result = machine.result()
            record.fingerprint = result_fingerprint(result)
            record.outcome = {
                "best_point": result.best.point if result.best else None,
                "best_costs": result.best.costs if result.best else None,
                "evaluations": result.evaluations,
                "trials": len(result.trials),
            }
            self._settle(record, "finished")
            return done_steps, True
        if machine.state is CampaignState.CANCELLED:
            self._settle(record, "cancelled")
            return done_steps, True
        return done_steps, False

    def _build_machine(self, record: _CampaignRecord) -> CampaignStateMachine:
        from repro.optim.archive import ParetoArchive
        from repro.telemetry.checkpoint import load_checkpoint
        from repro.telemetry.sinks import JsonlSink
        from repro.telemetry.tracer import Tracer

        campaign_dir = self.spool / record.campaign_id
        journal = campaign_dir / "journal.jsonl"
        ckpt = str(journal) + ".ckpt"
        dse = self._factory(record.spec)
        # The frontier journal is always rebuilt from the trial ledger:
        # on resume the machine re-feeds every checkpointed trial into a
        # truncated archive, so a kill/restart reconstructs the exact
        # same frontier a straight-through run would have journaled.
        archive = ParetoArchive(
            journal_path=campaign_dir / "frontier.jsonl", truncate=True
        )
        if os.path.exists(ckpt):
            checkpoint = load_checkpoint(ckpt)
            sink = JsonlSink(
                journal,
                resume_events=checkpoint.journal_events,
                exclusive=True,
            )
            tracer = Tracer(sink, seq_start=checkpoint.journal_events)
            machine = CampaignStateMachine(
                dse,
                tracer=tracer,
                checkpoint_path=ckpt,
                resume_from=checkpoint,
                archive=archive,
            )
        else:
            # A journal without a checkpoint is an orphan of a crash
            # before the first attempt completed: restart from scratch.
            if journal.exists():
                journal.unlink()
            sink = JsonlSink(journal, exclusive=True)
            tracer = Tracer(sink)
            machine = CampaignStateMachine(
                dse, tracer=tracer, checkpoint_path=ckpt, archive=archive
            )
        record.sink = sink
        return machine

    # -- persistence ---------------------------------------------------------

    def _settle(self, record: _CampaignRecord, status: str) -> None:
        # Runs on the worker thread too, so it must not touch asyncio
        # primitives: done_event is set by the loop after the slice.
        record.status = status
        self._close_sink(record)
        self._persist_state(record)

    def _close_sink(self, record: _CampaignRecord) -> None:
        if record.sink is not None:
            try:
                record.sink.close()
            finally:
                record.sink = None

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        """Write-temp-then-rename so a SIGKILL mid-write can never
        leave a torn JSON file for recovery to trip over."""
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    def _persist_state(self, record: _CampaignRecord) -> None:
        state = {
            "status": record.status,
            "steps_done": record.steps_done,
            "error": record.error,
            "fingerprint": record.fingerprint,
            "outcome": record.outcome,
            "deadline_s": record.deadline_s,
            "elapsed_s": record.elapsed_s,
        }
        record.persist_seq += 1
        try:
            # Ambient attempt = per-record persist count, so rate-based
            # spool faults re-roll on the next persist of this record.
            with attempt_scope(record.persist_seq, allow_kill=True):
                inject("spool-write", key=record.campaign_id)
        except WorkerCrashError:
            # Skip this persist: state.json is one write stale, which
            # recovery already tolerates (resume from the checkpoint).
            self.counters["spool_write_faults"] += 1
            return
        path = self.spool / record.campaign_id / "state.json"
        self._write_atomic(path, json.dumps(state, indent=2))

    def _persist_tenants(self) -> None:
        self._tenants_seq = getattr(self, "_tenants_seq", 0) + 1
        try:
            with attempt_scope(self._tenants_seq, allow_kill=True):
                inject("spool-write", key="tenants")
        except WorkerCrashError:
            self.counters["spool_write_faults"] += 1
            return
        payload = [t.as_dict() for t in self.scheduler.tenants()]
        self._write_atomic(
            self.spool / "tenants.json", json.dumps(payload, indent=2)
        )

    def grant_quota(self, tenant: str, extra_steps: int) -> Dict[str, Any]:
        """Raise a tenant's step budget and wake the scheduler."""
        state = self.scheduler.grant_quota(tenant, extra_steps)
        self._persist_tenants()
        if self._wake is not None:
            self._wake.set()
        return state.as_dict()
