"""The campaign service: async DSE-as-a-service over one shared fleet.

:class:`CampaignService` accepts campaign submissions from multiple
tenants and interleaves their acquisition attempts over the process-wide
shared-memory worker fleet (:func:`repro.perf.shm_fleet.shared_fleet` is
the default executor plane: every campaign's fused blocks dispatch to
the same warm workers).  Scheduling is delegated to the deterministic
:class:`~repro.service.scheduler.CampaignScheduler`; execution is
delegated to :class:`~repro.service.machine.CampaignStateMachine`, the
same object a straight ``ExplainableDSE.run()`` drives — so a campaign
that ran through the service is bit-identical to one that ran alone.

Slices execute strictly one at a time (``asyncio.to_thread`` keeps the
event loop responsive while a slice computes): parallelism comes from
the fleet *within* a step, and the one-slice-at-a-time rule is what
makes the interleaving — and therefore every journal — deterministic.

Every campaign gets its own spool directory keyed by campaign id::

    <spool>/<campaign_id>/spec.json           submission record
    <spool>/<campaign_id>/journal.jsonl       telemetry journal
    <spool>/<campaign_id>/journal.jsonl.ckpt  resumable checkpoint
    <spool>/<campaign_id>/state.json          service-level status

Per-campaign journal files are what let N campaigns trace concurrently:
:class:`~repro.telemetry.sinks.JsonlSink` assumes one campaign per file
(its resume truncation rewinds the whole file), so the service never
shares a journal between campaigns and takes the sink's exclusive lock
against accidental collisions.  A service process that dies (SIGTERM,
SIGKILL, power loss) restarts from the spool: campaigns resume from
their checkpoints and finish with the same fingerprints an uninterrupted
service — or a solo run — would produce.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, AsyncIterator, Callable, Dict, List, Optional

from repro.service.machine import (
    CampaignState,
    CampaignStateMachine,
    result_fingerprint,
)
from repro.service.scheduler import CampaignScheduler, SchedulerError

__all__ = [
    "CampaignSpec",
    "CampaignService",
    "ServiceError",
    "default_campaign_factory",
]


class ServiceError(RuntimeError):
    """An invalid service operation (unknown campaign, wrong state)."""


@dataclass
class CampaignSpec:
    """One campaign submission.

    ``shm_eval`` defaults on: service campaigns share the process-wide
    warm worker fleet unless a submission opts out.  ``tenant_quota``
    is the tenant's total step budget (``None`` defers to the service
    default, ``0`` means unlimited) and ``tenant_weight`` scales the
    steps granted per scheduler turn; both update the tenant record at
    submission time.
    """

    model: str
    tenant: str = "default"
    iterations: int = 40
    mapping_mode: str = "codesign"
    objective: str = "latency"
    top_n: int = 150
    tenant_weight: Optional[int] = None
    tenant_quota: Optional[int] = None
    shm_eval: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def default_campaign_factory(spec: CampaignSpec):
    """Build the :class:`ExplainableDSE` for one submission.

    Edge design space, Table 1 constraints, and a fresh evaluator per
    campaign (own mapping cache — interleaved campaigns must not warm
    each other's caches, or their journals would diverge from solo
    runs).  ``shm_eval=True`` routes fused blocks to the shared fleet.
    """
    # Heavy imports stay out of module import time (and out of the
    # machine/scheduler import graph).
    from repro.arch.accelerator import build_edge_design_space
    from repro.core.dse.explainable import ExplainableDSE
    from repro.experiments.setup import edge_constraints, make_evaluator

    evaluator = make_evaluator(
        spec.model,
        mapping_mode=spec.mapping_mode,
        top_n=spec.top_n,
        objective=spec.objective,
        shm_eval=spec.shm_eval,
    )
    return ExplainableDSE(
        build_edge_design_space(),
        evaluator,
        edge_constraints(spec.model),
        max_evaluations=spec.iterations,
    )


@dataclass
class _CampaignRecord:
    """Service-side bookkeeping for one campaign."""

    campaign_id: str
    spec: CampaignSpec
    machine: Optional[CampaignStateMachine] = None
    sink: Any = None
    status: str = "queued"
    error: Optional[str] = None
    cancel_requested: bool = False
    steps_done: int = 0
    slices: int = 0
    fingerprint: Optional[str] = None
    outcome: Optional[Dict[str, Any]] = None
    done_event: Optional[asyncio.Event] = None


#: Campaign states the service reports as settled.
_TERMINAL = {"finished", "cancelled", "failed"}


class CampaignService:
    """Async multi-tenant campaign service over one shared worker fleet.

    Args:
        spool_dir: Root of the per-campaign spool (created on start;
            restarting on the same spool resumes unfinished campaigns).
        max_concurrent / quantum / default_quota: Scheduler policy
            (``None`` reads the ``REPRO_SERVICE_*`` / ``REPRO_TENANT_*``
            knobs).
        campaign_factory: ``spec -> ExplainableDSE`` (default:
            :func:`default_campaign_factory`).
    """

    def __init__(
        self,
        spool_dir: os.PathLike,
        *,
        max_concurrent: Optional[int] = None,
        quantum: Optional[int] = None,
        default_quota: Optional[int] = "env",
        campaign_factory: Optional[Callable] = None,
    ):
        self.spool = Path(spool_dir)
        self.scheduler = CampaignScheduler(
            quantum=quantum,
            max_concurrent=max_concurrent,
            default_quota=default_quota,
        )
        self._factory = campaign_factory or default_campaign_factory
        self._records: Dict[str, _CampaignRecord] = {}
        self._counter = 0
        self._wake: Optional[asyncio.Event] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._stopping = False
        #: (campaign_id, steps) slices in dispatch order, for tests.
        self.slice_log: List[tuple] = []

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Create the spool, recover prior campaigns, start scheduling."""
        if self._loop_task is not None:
            raise ServiceError("service already started")
        self.spool.mkdir(parents=True, exist_ok=True)
        self._wake = asyncio.Event()
        self._stopping = False
        self._recover()
        self._loop_task = asyncio.create_task(self._run_loop())

    async def stop(self) -> None:
        """Stop at the next slice boundary; every running campaign is
        left checkpointed and resumable (a later :meth:`start` on the
        same spool continues it)."""
        if self._loop_task is None:
            return
        self._stopping = True
        self._wake.set()
        await self._loop_task
        self._loop_task = None
        for record in self._records.values():
            self._close_sink(record)

    async def drained(self) -> None:
        """Wait until no submitted campaign can still make progress."""
        while True:
            if self.scheduler.idle or self.scheduler.starved:
                return
            await asyncio.sleep(0.02)

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild records from the spool after a restart (or crash)."""
        tenants_path = self.spool / "tenants.json"
        if tenants_path.exists():
            for entry in json.loads(tenants_path.read_text()):
                tenant = self.scheduler.register_tenant(
                    entry["tenant"],
                    weight=entry.get("weight"),
                    quota=entry.get("quota"),
                )
                tenant.steps_used = int(entry.get("steps_used", 0))
        for path in sorted(self.spool.iterdir()):
            spec_path = path / "spec.json"
            if not spec_path.is_file():
                continue
            campaign_id = path.name
            spec = CampaignSpec.from_dict(json.loads(spec_path.read_text()))
            record = _CampaignRecord(campaign_id=campaign_id, spec=spec)
            record.done_event = asyncio.Event()
            state_path = path / "state.json"
            if state_path.exists():
                state = json.loads(state_path.read_text())
                record.status = state.get("status", "queued")
                record.error = state.get("error")
                record.steps_done = int(state.get("steps_done", 0))
                record.fingerprint = state.get("fingerprint")
                record.outcome = state.get("outcome")
            self._records[campaign_id] = record
            self._counter = max(self._counter, int(campaign_id[1:]) + 1)
            if record.status in _TERMINAL:
                record.done_event.set()
                continue
            record.status = "queued"
            record.machine = None  # rebuilt (and resumed) at first slice
            self._register_tenant(spec)
            self.scheduler.submit(campaign_id, spec.tenant)

    # -- API -----------------------------------------------------------------

    def _register_tenant(self, spec: CampaignSpec) -> None:
        quota = "default"
        if spec.tenant_quota is not None:
            quota = None if spec.tenant_quota == 0 else spec.tenant_quota
        self.scheduler.register_tenant(
            spec.tenant, weight=spec.tenant_weight, quota=quota
        )

    async def submit(self, spec: CampaignSpec) -> str:
        """Queue a campaign; returns its id (``c0001``, ``c0002``, ...)."""
        if self._loop_task is None:
            raise ServiceError("service is not running")
        campaign_id = f"c{self._counter:04d}"
        self._counter += 1
        campaign_dir = self.spool / campaign_id
        campaign_dir.mkdir(parents=True)
        (campaign_dir / "spec.json").write_text(
            json.dumps(spec.to_dict(), indent=2)
        )
        record = _CampaignRecord(campaign_id=campaign_id, spec=spec)
        record.done_event = asyncio.Event()
        self._records[campaign_id] = record
        self._register_tenant(spec)
        self.scheduler.submit(campaign_id, spec.tenant)
        self._persist_state(record)
        self._wake.set()
        return campaign_id

    def _record(self, campaign_id: str) -> _CampaignRecord:
        try:
            return self._records[campaign_id]
        except KeyError:
            raise ServiceError(
                f"unknown campaign {campaign_id!r}"
            ) from None

    def status(self, campaign_id: str) -> Dict[str, Any]:
        """Campaign status, including the resilience layer's SLO view."""
        record = self._record(campaign_id)
        tenant = self.scheduler.tenant(record.spec.tenant)
        status = record.status
        if status not in _TERMINAL and tenant.quota_exhausted:
            status = "starved"
        payload = {
            "campaign_id": campaign_id,
            "tenant": record.spec.tenant,
            "model": record.spec.model,
            "status": status,
            "steps_done": record.steps_done,
            "slices": record.slices,
            "error": record.error,
            "tenant_state": tenant.as_dict(),
            "slo": record.machine.slo_snapshot() if record.machine else None,
        }
        if record.machine is not None:
            payload["consumed"] = record.machine.consumed
        return payload

    def list_campaigns(self) -> List[Dict[str, Any]]:
        return [self.status(cid) for cid in sorted(self._records)]

    async def cancel(self, campaign_id: str) -> Dict[str, Any]:
        """Cancel at the next attempt boundary (immediate when queued)."""
        record = self._record(campaign_id)
        if record.status in _TERMINAL:
            raise ServiceError(
                f"campaign {campaign_id!r} is already {record.status}"
            )
        record.cancel_requested = True
        if record.machine is None and record.status == "queued":
            try:
                phase = self.scheduler.campaign_phase(campaign_id)
            except SchedulerError:
                phase = "waiting"
            if phase == "waiting":
                self.scheduler.remove(campaign_id)
                self._settle(record, "cancelled")
                record.done_event.set()
        self._wake.set()
        return self.status(campaign_id)

    def result(self, campaign_id: str) -> Dict[str, Any]:
        """The finished campaign's outcome (fingerprint + best point)."""
        record = self._record(campaign_id)
        if record.status != "finished" or record.outcome is None:
            raise ServiceError(
                f"no result: campaign {campaign_id!r} is {record.status}"
            )
        return dict(record.outcome, fingerprint=record.fingerprint)

    async def wait(self, campaign_id: str) -> Dict[str, Any]:
        """Wait until the campaign settles; returns its final status."""
        record = self._record(campaign_id)
        await record.done_event.wait()
        return self.status(campaign_id)

    def journal_path(self, campaign_id: str) -> Path:
        self._record(campaign_id)
        return self.spool / campaign_id / "journal.jsonl"

    async def stream_journal(
        self, campaign_id: str, offset: int = 0, follow: bool = False
    ) -> AsyncIterator[str]:
        """Yield journal lines from ``offset`` (a line number).

        With ``follow=True`` the stream tails the file until the
        campaign settles; journals only grow at attempt boundaries, so
        a follower sees whole attempts, never torn events.
        """
        record = self._record(campaign_id)
        path = self.journal_path(campaign_id)
        position = offset
        while True:
            lines = []
            if path.exists():
                with open(path) as handle:
                    lines = handle.read().splitlines()
            for line in lines[position:]:
                yield line
            position = max(position, len(lines))
            if not follow or record.done_event.is_set():
                return
            await asyncio.sleep(0.05)

    # -- scheduling loop -----------------------------------------------------

    async def _run_loop(self) -> None:
        while not self._stopping:
            self._sweep_cancellations()
            decision = self.scheduler.next_slice()
            if decision is None:
                self._wake.clear()
                if self._stopping:
                    return
                await self._wake.wait()
                continue
            record = self._records[decision.campaign_id]
            self.slice_log.append((decision.campaign_id, decision.steps))
            record.slices += 1
            steps_done, done = await asyncio.to_thread(
                self._run_slice, record, decision.steps
            )
            record.steps_done += steps_done
            self.scheduler.report(
                decision.campaign_id, steps_done, done=done
            )
            self._persist_state(record)
            self._persist_tenants()
            if record.status in _TERMINAL:
                record.done_event.set()

    def _sweep_cancellations(self) -> None:
        """Settle cancel requests for campaigns not currently sliced —
        queued ones, and parked ones a starved tenant would never get
        another slice for.  Runs on the loop thread between slices, so
        no machine is concurrently executing."""
        for record in self._records.values():
            if not record.cancel_requested or record.status in _TERMINAL:
                continue
            machine = record.machine
            if machine is not None and not machine.state.terminal:
                machine.cancel()
            try:
                self.scheduler.remove(record.campaign_id)
            except SchedulerError:
                pass
            self._settle(record, "cancelled")
            record.done_event.set()

    def _run_slice(self, record: _CampaignRecord, steps: int):
        """Run up to ``steps`` attempts of one campaign (worker thread).

        Returns ``(steps_done, done)``.  The machine is always left at
        an attempt boundary: FINISHED/CANCELLED/FAILED, or paused into
        CHECKPOINTED with its snapshot on disk.
        """
        done_steps = 0
        try:
            machine = record.machine
            if machine is None:
                machine = record.machine = self._build_machine(record)
            if machine.state is CampaignState.PENDING:
                record.status = "running"
                machine.start()
            elif machine.state is CampaignState.CHECKPOINTED:
                record.status = "running"
                machine.resume()
            while (
                machine.state is CampaignState.RUNNING
                and done_steps < steps
                and not record.cancel_requested
            ):
                machine.step()
                done_steps += 1
            if record.cancel_requested and not machine.state.terminal:
                machine.cancel()
            elif machine.state is CampaignState.RUNNING:
                machine.pause()
                record.status = "checkpointed"
        except BaseException as exc:
            record.error = f"{type(exc).__name__}: {exc}"
            self._settle(record, "failed")
            return done_steps, True
        if machine.state is CampaignState.FINISHED:
            result = machine.result()
            record.fingerprint = result_fingerprint(result)
            record.outcome = {
                "best_point": result.best.point if result.best else None,
                "best_costs": result.best.costs if result.best else None,
                "evaluations": result.evaluations,
                "trials": len(result.trials),
            }
            self._settle(record, "finished")
            return done_steps, True
        if machine.state is CampaignState.CANCELLED:
            self._settle(record, "cancelled")
            return done_steps, True
        return done_steps, False

    def _build_machine(self, record: _CampaignRecord) -> CampaignStateMachine:
        from repro.telemetry.checkpoint import load_checkpoint
        from repro.telemetry.sinks import JsonlSink
        from repro.telemetry.tracer import Tracer

        campaign_dir = self.spool / record.campaign_id
        journal = campaign_dir / "journal.jsonl"
        ckpt = str(journal) + ".ckpt"
        dse = self._factory(record.spec)
        if os.path.exists(ckpt):
            checkpoint = load_checkpoint(ckpt)
            sink = JsonlSink(
                journal,
                resume_events=checkpoint.journal_events,
                exclusive=True,
            )
            tracer = Tracer(sink, seq_start=checkpoint.journal_events)
            machine = CampaignStateMachine(
                dse,
                tracer=tracer,
                checkpoint_path=ckpt,
                resume_from=checkpoint,
            )
        else:
            # A journal without a checkpoint is an orphan of a crash
            # before the first attempt completed: restart from scratch.
            if journal.exists():
                journal.unlink()
            sink = JsonlSink(journal, exclusive=True)
            tracer = Tracer(sink)
            machine = CampaignStateMachine(
                dse, tracer=tracer, checkpoint_path=ckpt
            )
        record.sink = sink
        return machine

    # -- persistence ---------------------------------------------------------

    def _settle(self, record: _CampaignRecord, status: str) -> None:
        # Runs on the worker thread too, so it must not touch asyncio
        # primitives: done_event is set by the loop after the slice.
        record.status = status
        self._close_sink(record)
        self._persist_state(record)

    def _close_sink(self, record: _CampaignRecord) -> None:
        if record.sink is not None:
            try:
                record.sink.close()
            finally:
                record.sink = None

    def _persist_state(self, record: _CampaignRecord) -> None:
        state = {
            "status": record.status,
            "steps_done": record.steps_done,
            "error": record.error,
            "fingerprint": record.fingerprint,
            "outcome": record.outcome,
        }
        path = self.spool / record.campaign_id / "state.json"
        path.write_text(json.dumps(state, indent=2))

    def _persist_tenants(self) -> None:
        payload = [t.as_dict() for t in self.scheduler.tenants()]
        (self.spool / "tenants.json").write_text(json.dumps(payload, indent=2))

    def grant_quota(self, tenant: str, extra_steps: int) -> Dict[str, Any]:
        """Raise a tenant's step budget and wake the scheduler."""
        state = self.scheduler.grant_quota(tenant, extra_steps)
        self._persist_tenants()
        if self._wake is not None:
            self._wake.set()
        return state.as_dict()
