"""A stdlib-only JSON/HTTP surface for the campaign service.

:class:`ServiceEndpoint` serves a small HTTP/1.1 API over
``asyncio.start_server`` — no web framework, no new runtime
dependencies — delegating every operation to an in-process
:class:`~repro.service.service.CampaignService`:

=======  =================================  =================================
Method   Path                               Meaning
=======  =================================  =================================
GET      ``/v1/healthz``                    health: load, counters, fleet
POST     ``/v1/campaigns``                  submit (body: CampaignSpec JSON;
                                            ``X-Repro-Deadline`` header sets
                                            ``deadline_s`` when the body
                                            doesn't)
GET      ``/v1/campaigns``                  list all campaigns
GET      ``/v1/campaigns/{id}``             status (incl. SLO + tenant state)
GET      ``/v1/campaigns/{id}/result``      finished campaign's outcome
POST     ``/v1/campaigns/{id}/cancel``      cancel at next attempt boundary
POST     ``/v1/campaigns/{id}/deadline``    extend the processing budget
                                            (body: ``{"extra_s": N}``)
GET      ``/v1/campaigns/{id}/journal``     journal lines
                                            (``?offset=N&follow=0|1``)
POST     ``/v1/tenants/{name}/quota``       grant quota
                                            (body: ``{"extra_steps": N}``)
=======  =================================  =================================

Journal streaming with ``follow=1`` uses chunked transfer encoding and
tails the campaign's journal until it settles; journals grow only at
attempt boundaries, so followers always see whole attempts.

Error mapping is explicit: every
:class:`~repro.service.service.ServiceError` subclass carries its own
``http_status`` (404 for unknown ids, 429/503 for shed submissions —
with a ``Retry-After`` header — 409 otherwise); nothing is inferred
from message text.  The ``http-response`` fault site fires just before
a success response is written, so chaos runs exercise the
acted-but-never-acknowledged window idempotent retries must cover.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.resilience.fault_injection import attempt_scope, inject
from repro.service.service import CampaignService, CampaignSpec, ServiceError

__all__ = ["ServiceEndpoint"]

_MAX_BODY = 1 << 20


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(
    status: int,
    payload: Dict[str, Any],
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    body = (json.dumps(payload) + "\n").encode()
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + body


class ServiceEndpoint:
    """Serve one :class:`CampaignService` over HTTP.

    Args:
        service: The (already started) in-process service.
        host: Bind address (default loopback).
        port: Bind port; ``0`` picks a free one — read :attr:`port`
            after :meth:`start`.
    """

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        #: Responses written so far: the ambient fault-injection attempt
        #: for the ``http-response`` site, so rate faults re-roll per
        #: response instead of firing forever on one request shape.
        self._response_seq = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, body, headers = await self._read_request(
                    reader
                )
                await self._dispatch(method, target, body, headers, writer)
            except _HttpError as exc:
                writer.write(
                    _response(exc.status, {"error": exc.message})
                )
            except ServiceError as exc:
                headers = None
                retry_after = getattr(exc, "retry_after", None)
                if retry_after is not None:
                    headers = {
                        "Retry-After": str(max(1, math.ceil(retry_after)))
                    }
                writer.write(
                    _response(
                        getattr(exc, "http_status", 409),
                        {"error": str(exc)},
                        headers=headers,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - must answer the client
                writer.write(
                    _response(500, {"error": f"{type(exc).__name__}: {exc}"})
                )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Tuple[
        str, str, Optional[Dict[str, Any]], Dict[str, str]
    ]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length") from None
        if content_length > _MAX_BODY:
            raise _HttpError(400, "request body too large")
        body = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise _HttpError(400, f"body is not valid JSON: {exc}")
        return method, target, body, headers

    def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        path: str,
    ) -> None:
        """Write one success response through the ``http-response``
        fault site (a crash there answers 500 via the generic handler;
        a kill dies with the work already committed — the window
        idempotent client retries exist for)."""
        self._response_seq += 1
        with attempt_scope(self._response_seq, allow_kill=True):
            inject("http-response", key=path)
        writer.write(_response(status, payload))

    async def _dispatch(
        self,
        method: str,
        target: str,
        body: Optional[Dict[str, Any]],
        headers: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> None:
        url = urlsplit(target)
        segments = [s for s in url.path.split("/") if s]
        query = parse_qs(url.query)
        service = self.service
        path = url.path

        if segments == ["v1", "healthz"] and method == "GET":
            self._send(writer, 200, dict(service.healthz(), ok=True), path)
            return
        if segments == ["v1", "campaigns"]:
            if method == "POST":
                if not isinstance(body, dict) or "model" not in body:
                    raise _HttpError(
                        400, "body must be a CampaignSpec with 'model'"
                    )
                try:
                    spec = CampaignSpec.from_dict(body)
                except TypeError as exc:
                    raise _HttpError(400, f"bad spec: {exc}") from None
                deadline_header = headers.get("x-repro-deadline")
                if deadline_header is not None and spec.deadline_s is None:
                    try:
                        spec.deadline_s = float(deadline_header)
                    except ValueError:
                        raise _HttpError(
                            400,
                            f"bad X-Repro-Deadline {deadline_header!r}",
                        ) from None
                campaign_id = await service.submit(spec)
                self._send(writer, 200, {"campaign_id": campaign_id}, path)
                return
            if method == "GET":
                self._send(
                    writer,
                    200,
                    {"campaigns": service.list_campaigns()},
                    path,
                )
                return
            raise _HttpError(405, f"{method} not allowed here")
        if len(segments) == 3 and segments[:2] == ["v1", "campaigns"]:
            campaign_id = segments[2]
            if method == "GET":
                self._send(writer, 200, service.status(campaign_id), path)
                return
            raise _HttpError(405, f"{method} not allowed here")
        if len(segments) == 4 and segments[:2] == ["v1", "campaigns"]:
            campaign_id, action = segments[2], segments[3]
            if action == "cancel" and method == "POST":
                self._send(
                    writer, 200, await service.cancel(campaign_id), path
                )
                return
            if action == "deadline" and method == "POST":
                try:
                    extra = float((body or {}).get("extra_s", 0))
                except (TypeError, ValueError):
                    raise _HttpError(400, "extra_s must be a number") from None
                self._send(
                    writer,
                    200,
                    service.extend_deadline(campaign_id, extra),
                    path,
                )
                return
            if action == "result" and method == "GET":
                self._send(writer, 200, service.result(campaign_id), path)
                return
            if action == "frontier" and method == "GET":
                self._send(writer, 200, service.frontier(campaign_id), path)
                return
            if action == "journal" and method == "GET":
                offset = int(query.get("offset", ["0"])[0])
                follow = query.get("follow", ["0"])[0] in ("1", "true")
                await self._stream_journal(
                    writer, campaign_id, offset, follow
                )
                return
            raise _HttpError(404, f"unknown action {action!r}")
        if (
            len(segments) == 4
            and segments[:2] == ["v1", "tenants"]
            and segments[3] == "quota"
            and method == "POST"
        ):
            extra = int((body or {}).get("extra_steps", 0))
            self._send(
                writer, 200, service.grant_quota(segments[2], extra), path
            )
            return
        raise _HttpError(404, f"no route for {method} {url.path}")

    async def _stream_journal(
        self,
        writer: asyncio.StreamWriter,
        campaign_id: str,
        offset: int,
        follow: bool,
    ) -> None:
        service = self.service
        service.journal_path(campaign_id)  # raises 404 for unknown ids
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        async for line in service.stream_journal(
            campaign_id, offset=offset, follow=follow
        ):
            chunk = (line + "\n").encode()
            writer.write(f"{len(chunk):x}\r\n".encode() + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
