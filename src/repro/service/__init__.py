"""Campaign service: async DSE-as-a-service with a multi-tenant scheduler.

Layers, bottom-up:

* :mod:`repro.service.machine` — :class:`CampaignStateMachine`, the
  ``ExplainableDSE.run()`` step loop as an explicit, pausable state
  machine (``ExplainableDSE.run()`` itself drives it).
* :mod:`repro.service.scheduler` — :class:`CampaignScheduler`,
  deterministic weighted-fair interleaving with per-tenant step quotas.
* :mod:`repro.service.service` — :class:`CampaignService`, the asyncio
  submit/status/cancel/result/stream-journal surface over one shared
  worker fleet, with a crash-safe per-campaign spool.
* :mod:`repro.service.http` / :mod:`repro.service.client` — a
  stdlib-only JSON endpoint and its client (``repro-experiments serve``
  / ``submit``).

The machine layer imports no asyncio and is safe to import from the
core DSE; the service/http layers load lazily via module ``__getattr__``
so ``repro.service.machine`` stays cheap on the ``run()`` hot path.
"""

from __future__ import annotations

from repro.service.machine import (
    CampaignState,
    CampaignStateError,
    CampaignStateMachine,
    result_fingerprint,
)

__all__ = [
    "CampaignState",
    "CampaignStateError",
    "CampaignStateMachine",
    "result_fingerprint",
    "CampaignScheduler",
    "SchedulerError",
    "Slice",
    "TenantState",
    "CampaignService",
    "CampaignSpec",
    "ServiceError",
    "UnknownCampaignError",
    "ServiceOverloadError",
    "default_campaign_factory",
    "ServiceEndpoint",
    "ServiceClient",
    "ServiceClientError",
]

_LAZY = {
    "CampaignScheduler": "repro.service.scheduler",
    "SchedulerError": "repro.service.scheduler",
    "Slice": "repro.service.scheduler",
    "TenantState": "repro.service.scheduler",
    "CampaignService": "repro.service.service",
    "CampaignSpec": "repro.service.service",
    "ServiceError": "repro.service.service",
    "UnknownCampaignError": "repro.service.service",
    "ServiceOverloadError": "repro.service.service",
    "default_campaign_factory": "repro.service.service",
    "ServiceEndpoint": "repro.service.http",
    "ServiceClient": "repro.service.client",
    "ServiceClientError": "repro.service.client",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
