"""A tiny urllib client for the campaign-service HTTP API.

Used by ``repro-experiments submit`` and the service benchmarks; kept
to the stdlib so driving a remote service needs nothing beyond the
repository itself.  Synchronous by design — callers are CLIs and test
harnesses, not event loops.

The client is built for a service that sheds load and a network that
drops connections:

* Every transport failure surfaces as :class:`ServiceClientError` —
  connection refused/reset and socket timeouts get ``status=None`` and
  ``retryable=True``; HTTP error responses carry their status and the
  server's ``Retry-After`` hint when one was sent.  Raw
  ``urllib.error`` never leaks to callers.
* Idempotent requests (GETs, and submits carrying an
  ``idempotency_key``) are retried with the repository's deterministic
  exponential backoff (:class:`~repro.resilience.supervisor
  .RetryPolicy`), honoring ``Retry-After`` when the server's hint is
  larger than the local backoff.
* :meth:`submit` generates no key on its own: at-most-once submission
  is opt-in, because only the caller knows whether two identical specs
  are one campaign retried or two campaigns requested.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from repro.resilience.supervisor import RetryPolicy

__all__ = ["ServiceClient", "ServiceClientError"]

#: HTTP statuses an idempotent retry can plausibly outlive.
_RETRYABLE_STATUSES = frozenset({429, 500, 503})

#: Campaign statuses the service reports as settled.
_TERMINAL_STATUSES = ("finished", "cancelled", "failed", "expired")


class ServiceClientError(RuntimeError):
    """An error talking to the service.

    Attributes:
        status: The HTTP status code, or ``None`` when no response
            arrived at all (connection refused/reset, socket timeout).
        retryable: Whether an idempotent retry of the same request can
            plausibly succeed.
        retry_after: The server's ``Retry-After`` hint in seconds, when
            one was sent (shed submissions send it).
    """

    def __init__(
        self,
        status: Optional[int],
        message: str,
        *,
        retryable: bool = False,
        retry_after: Optional[float] = None,
    ):
        label = f"HTTP {status}" if status is not None else "no response"
        super().__init__(f"{label}: {message}")
        self.status = status
        self.retryable = retryable
        self.retry_after = retry_after


class ServiceClient:
    """Talk to a :class:`~repro.service.http.ServiceEndpoint`.

    Args:
        base_url: e.g. ``http://127.0.0.1:8321`` (no trailing slash
            needed).
        timeout: Per-request socket timeout in seconds.
        retries: Retries for idempotent requests (``None`` reads
            ``REPRO_MAX_RETRIES``).
        backoff: First-retry backoff in seconds, doubling per retry
            with deterministic jitter (``None`` reads
            ``REPRO_RETRY_BACKOFF``).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.policy = RetryPolicy.from_env(
            max_retries=retries, backoff_base=backoff
        )

    # -- transport -----------------------------------------------------------

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode()).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error body
                message = exc.reason
            retry_after = None
            if exc.headers is not None:
                raw = exc.headers.get("Retry-After")
                if raw is not None:
                    try:
                        retry_after = float(raw)
                    except ValueError:
                        pass
            raise ServiceClientError(
                exc.code,
                message,
                retryable=exc.code in _RETRYABLE_STATUSES,
                retry_after=retry_after,
            ) from None
        except urllib.error.URLError as exc:
            reason = exc.reason
            raise ServiceClientError(
                None,
                f"{type(reason).__name__ if reason else 'URLError'}: "
                f"{reason}",
                retryable=True,
            ) from None
        except (
            TimeoutError,
            ConnectionError,
            http.client.HTTPException,
        ) as exc:
            raise ServiceClientError(
                None, f"{type(exc).__name__}: {exc}", retryable=True
            ) from None

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        *,
        idempotent: Optional[bool] = None,
    ) -> Dict[str, Any]:
        """One logical request; idempotent ones survive transient
        failures via bounded retries with deterministic backoff."""
        if idempotent is None:
            idempotent = method == "GET"
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceClientError as exc:
                attempt += 1
                if (
                    not idempotent
                    or not exc.retryable
                    or attempt > self.policy.max_retries
                ):
                    raise
                delay = self.policy.backoff_seconds(
                    f"{method} {path}", attempt
                )
                if exc.retry_after is not None:
                    delay = max(delay, exc.retry_after)
                if delay > 0:
                    time.sleep(delay)

    # -- API -----------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def submit(
        self,
        spec: Dict[str, Any],
        *,
        idempotency_key: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> str:
        """Submit a campaign spec dict; returns the campaign id.

        With an ``idempotency_key`` (here or in the spec) the submit is
        at-most-once — the server dedups replays — which makes it safe
        to retry, so transient failures and shed responses (429/503,
        honoring ``Retry-After``) are retried automatically.  Without a
        key a failed submit raises immediately: the caller cannot know
        whether the campaign landed.
        """
        spec = dict(spec)
        if idempotency_key is not None:
            spec.setdefault("idempotency_key", idempotency_key)
        if deadline_s is not None:
            spec.setdefault("deadline_s", deadline_s)
        idempotent = spec.get("idempotency_key") is not None
        return self._request(
            "POST", "/v1/campaigns", spec, idempotent=idempotent
        )["campaign_id"]

    def list_campaigns(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/campaigns")["campaigns"]

    def status(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def cancel(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/campaigns/{campaign_id}/cancel")

    def extend_deadline(
        self, campaign_id: str, extra_s: float
    ) -> Dict[str, Any]:
        """Grant the campaign more processing budget (re-queues an
        ``expired`` campaign from its checkpoint)."""
        return self._request(
            "POST",
            f"/v1/campaigns/{campaign_id}/deadline",
            {"extra_s": extra_s},
        )

    def result(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/campaigns/{campaign_id}/result")

    def frontier(self, campaign_id: str) -> Dict[str, Any]:
        """The campaign's Pareto frontier (any status; may be empty)."""
        return self._request("GET", f"/v1/campaigns/{campaign_id}/frontier")

    def grant_quota(self, tenant: str, extra_steps: int) -> Dict[str, Any]:
        return self._request(
            "POST",
            f"/v1/tenants/{tenant}/quota",
            {"extra_steps": extra_steps},
        )

    def journal(self, campaign_id: str, offset: int = 0) -> List[str]:
        """The campaign's journal lines from ``offset`` (no follow)."""
        return list(self.stream_journal(campaign_id, offset=offset))

    def stream_journal(
        self,
        campaign_id: str,
        offset: int = 0,
        follow: bool = False,
        idle_timeout: float = 10.0,
    ) -> Iterator[str]:
        """Yield journal lines; ``follow=True`` tails until settled.

        A followed stream is long-lived, so it gets its own resilience:
        reads are bounded by ``idle_timeout`` and a quiet or broken
        stream reconnects transparently from the current line offset
        (journal lines are append-only, so offset-based resume never
        duplicates or tears a line).  Timeouts reconnect indefinitely —
        a quiet journal is normal, attempts can be slow — while hard
        connection failures are bounded by the retry budget.
        """
        position = offset
        failures = 0
        while True:
            url = (
                f"{self.base_url}/v1/campaigns/{campaign_id}/journal"
                f"?offset={position}&follow={'1' if follow else '0'}"
            )
            timeout = idle_timeout if follow else self.timeout
            try:
                with urllib.request.urlopen(url, timeout=timeout) as resp:
                    for raw in resp:
                        line = raw.decode().rstrip("\n")
                        if line:
                            position += 1
                            failures = 0
                            yield line
                return  # clean end of stream: the campaign settled
            except urllib.error.HTTPError as exc:
                try:
                    message = json.loads(exc.read().decode()).get(
                        "error", ""
                    )
                except Exception:  # noqa: BLE001 - best-effort error body
                    message = exc.reason
                raise ServiceClientError(exc.code, message) from None
            except TimeoutError:
                if not follow:
                    raise ServiceClientError(
                        None, "journal read timed out", retryable=True
                    ) from None
                continue  # idle stream: reconnect from `position`
            except (
                urllib.error.URLError,
                ConnectionError,
                http.client.HTTPException,
            ) as exc:
                failures += 1
                if not follow or failures > self.policy.max_retries:
                    raise ServiceClientError(
                        None,
                        f"{type(exc).__name__}: {exc}",
                        retryable=True,
                    ) from None
                self.policy.sleep_before_retry(
                    f"journal {campaign_id}", failures
                )

    def wait(
        self,
        campaign_id: str,
        timeout: float = 600.0,
        poll: float = 0.2,
        poll_max: float = 2.0,
    ) -> Dict[str, Any]:
        """Poll until the campaign settles; returns its final status.

        Polling backs off exponentially from ``poll`` to ``poll_max``
        so long campaigns don't hammer the service with status GETs.
        """
        deadline = time.monotonic() + timeout
        delay = max(0.01, poll)
        while True:
            status = self.status(campaign_id)
            if status["status"] in _TERMINAL_STATUSES:
                return status
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {status['status']} "
                    f"after {timeout}s"
                )
            time.sleep(min(delay, deadline - now))
            delay = min(delay * 2, poll_max)
