"""A tiny urllib client for the campaign-service HTTP API.

Used by ``repro-experiments submit`` and the service smoke benchmark;
kept to the stdlib so driving a remote service needs nothing beyond the
repository itself.  Synchronous by design — callers are CLIs and test
harnesses, not event loops.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """An HTTP error response from the service (carries the status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to a :class:`~repro.service.http.ServiceEndpoint`.

    Args:
        base_url: e.g. ``http://127.0.0.1:8321`` (no trailing slash
            needed).
        timeout: Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode()).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error body
                message = exc.reason
            raise ServiceClientError(exc.code, message) from None

    # -- API -----------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def submit(self, spec: Dict[str, Any]) -> str:
        """Submit a campaign spec dict; returns the campaign id."""
        return self._request("POST", "/v1/campaigns", spec)["campaign_id"]

    def list_campaigns(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/campaigns")["campaigns"]

    def status(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def cancel(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/campaigns/{campaign_id}/cancel")

    def result(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/campaigns/{campaign_id}/result")

    def grant_quota(self, tenant: str, extra_steps: int) -> Dict[str, Any]:
        return self._request(
            "POST",
            f"/v1/tenants/{tenant}/quota",
            {"extra_steps": extra_steps},
        )

    def journal(self, campaign_id: str, offset: int = 0) -> List[str]:
        """The campaign's journal lines from ``offset`` (no follow)."""
        return list(self.stream_journal(campaign_id, offset=offset))

    def stream_journal(
        self, campaign_id: str, offset: int = 0, follow: bool = False
    ) -> Iterator[str]:
        """Yield journal lines; ``follow=True`` tails until settled."""
        url = (
            f"{self.base_url}/v1/campaigns/{campaign_id}/journal"
            f"?offset={offset}&follow={'1' if follow else '0'}"
        )
        timeout = None if follow else self.timeout
        with urllib.request.urlopen(url, timeout=timeout) as response:
            for raw in response:
                line = raw.decode().rstrip("\n")
                if line:
                    yield line

    def wait(
        self,
        campaign_id: str,
        timeout: float = 600.0,
        poll: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the campaign settles; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(campaign_id)
            if status["status"] in ("finished", "cancelled", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {status['status']} "
                    f"after {timeout}s"
                )
            time.sleep(poll)
