"""The campaign state machine: ``ExplainableDSE.run()`` as explicit steps.

:class:`CampaignStateMachine` is the step loop of
:meth:`repro.core.dse.explainable.ExplainableDSE.run` lifted into an
object whose lifecycle is externally drivable::

    PENDING --start()--> RUNNING --step()*--> FINISHED
                           |  ^                FAILED (breaker trip)
                  pause()  v  | resume()
                         CHECKPOINTED
                           |
                  cancel() v  (also from RUNNING / PENDING)
                         CANCELLED

Each :meth:`step` performs exactly one acquisition attempt — the unit at
which the campaign checkpoints, pauses, resumes, and cancels — and the
machine's persistent form *is* the existing
:class:`~repro.telemetry.checkpoint.CampaignCheckpoint` schema: pausing
writes one, resuming restores one, and a machine rebuilt from a
checkpoint continues bit-identically.  ``ExplainableDSE.run()`` is now a
thin driver (``start(); while RUNNING: step(); result()``), so a
campaign driven step-by-step — interleaved with other campaigns by the
:mod:`repro.service` scheduler, killed and resumed across processes —
produces byte-identical journals and result fingerprints to a straight
``run()`` *by construction*: both execute this class.

Journal-identity invariant: the machine only flushes its tracer at
attempt boundaries (checkpoints, pause, cancel, termination).  Events
within one attempt share a ``step`` number and are emitted in canonical
order, so any partition of the event stream into attempt-aligned flush
batches serializes to the same bytes as a single end-of-run flush.
"""

from __future__ import annotations

import enum
import math
import time
from typing import List, Optional, Set, Tuple

from repro.core.dse.constraints import all_satisfied
from repro.core.dse.result import DSEResult, TrialRecord, select_best
from repro.resilience.supervisor import FailureRateBreaker
from repro.telemetry.checkpoint import trials_from_dicts
from repro.telemetry.events import (
    BottleneckIdentified,
    BudgetExhausted,
    CandidateGenerated,
    IncumbentUpdated,
    MitigationPredicted,
    RunSummary,
    StepStarted,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = [
    "CampaignState",
    "CampaignStateError",
    "CampaignStateMachine",
    "result_fingerprint",
]


class CampaignState(enum.Enum):
    """Lifecycle states of one campaign."""

    PENDING = "pending"
    RUNNING = "running"
    CHECKPOINTED = "checkpointed"
    FINISHED = "finished"
    CANCELLED = "cancelled"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (
            CampaignState.FINISHED,
            CampaignState.CANCELLED,
            CampaignState.FAILED,
        )


class CampaignStateError(RuntimeError):
    """An operation was applied to a campaign in the wrong state."""


def result_fingerprint(result: DSEResult) -> str:
    """Canonical, exact rendering of everything a campaign decides.

    The single definition shared by the differential matrix, the
    campaign service's ``result`` responses, and the service smoke test,
    so "identical fingerprints" always means the same comparison.
    ``repr`` keeps float bit-patterns exact (JSON would need tagged
    inf/nan for unmappable trials).
    """
    payload = {
        "points": [t.point for t in result.trials],
        "costs": [t.costs for t in result.trials],
        "explanations": list(result.explanations),
        "best_point": result.best.point if result.best else None,
        "best_costs": result.best.costs if result.best else None,
        "evaluations": result.evaluations,
    }
    return repr(payload)


def _jsonable(value: object) -> object:
    """Candidate values as JSON scalars (bundles stringify)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class CampaignStateMachine:
    """One Explainable-DSE campaign, drivable one acquisition attempt at
    a time.

    Args:
        dse: The configured :class:`~repro.core.dse.explainable
            .ExplainableDSE` (design space, evaluator, constraints,
            budgets); the machine calls its analysis/acquisition/update
            methods so the per-attempt decisions live in one place.
        initial_point: Starting design point (default: the space
            minimum); ignored on resume.
        tracer: Telemetry tracer (default: the DSE's own).
        checkpoint_path: When set, a crash-safe snapshot is written every
            ``checkpoint_every`` completed attempts, on pause/cancel, and
            at termination.
        checkpoint_every: Attempt interval between periodic snapshots.
        resume_from: A :class:`~repro.telemetry.checkpoint
            .CampaignCheckpoint` or a path to one; :meth:`start` restores
            it instead of evaluating ``initial_point``.
    """

    def __init__(
        self,
        dse,
        initial_point=None,
        *,
        tracer: Optional[Tracer] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        resume_from: Optional[object] = None,
        archive=None,
    ):
        self.dse = dse
        self.initial_point = initial_point
        self.tracer = tracer if tracer is not None else dse.tracer
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.resume_from = resume_from
        #: Optional :class:`repro.optim.archive.ParetoArchive` fed every
        #: feasible trial at attempt boundaries.  On resume the caller
        #: passes a *fresh* (truncated) archive and the machine re-feeds
        #: the restored trial ledger, which reconstructs the frontier —
        #: and its journal — deterministically.
        self.archive = archive
        self._archive_fed = 0

        self.state = CampaignState.PENDING
        self.error: Optional[BaseException] = None

        # Loop state (populated by start()).
        self.trials: List[TrialRecord] = []
        self.explanations: List[str] = []
        self.exhausted: Set[str] = set()
        self.attempt = 0
        self.attempts_without_improvement = 0
        self.breaker = FailureRateBreaker()
        self.finished = False  # checkpoint-schema flag, not machine state
        self.current = None
        self.current_eval = None
        self.tried_points: Set[Tuple] = set()
        self.base_evaluations = 0
        self._started: Optional[float] = None
        self._result: Optional[DSEResult] = None
        self._last_checkpoint_attempt: Optional[int] = None

    # -- derived accounting --------------------------------------------------

    @property
    def consumed(self) -> int:
        """Evaluations this campaign has consumed so far."""
        if self.state is CampaignState.PENDING:
            return 0
        if self._result is not None:
            return self._result.evaluations
        return self.dse.evaluator.evaluations - self.base_evaluations

    def slo_snapshot(self) -> dict:
        """Per-campaign SLO state: the resilience layer's view of this
        campaign (circuit breaker, quarantined trials, retry posture,
        attempt progress)."""
        quarantined = sum(
            1 for t in self.trials if t.note.startswith("quarantined")
        )
        return {
            "breaker": self.breaker.as_dict(),
            "quarantined_trials": quarantined,
            "trials": len(self.trials),
            "attempt": self.attempt,
            "attempts_without_improvement": (
                self.attempts_without_improvement
            ),
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> CampaignState:
        """PENDING -> RUNNING: evaluate the initial point, or restore the
        ``resume_from`` checkpoint (a finished checkpoint goes straight
        to FINISHED with the stored outcome)."""
        if self.state is not CampaignState.PENDING:
            raise CampaignStateError(
                f"cannot start a {self.state.value} campaign"
            )
        dse = self.dse
        self._started = time.perf_counter()
        try:
            if self.resume_from is not None:
                checkpoint = dse._load_resume(self.resume_from)
                self.trials = trials_from_dicts(checkpoint.trials)
                self.explanations = list(checkpoint.explanations)
                if checkpoint.finished:
                    best = select_best(
                        self.trials, dse.constraints, objective=dse.objective
                    )
                    self._result = DSEResult(
                        technique="explainable",
                        model=dse.evaluator.workload.name,
                        trials=self.trials,
                        best=best,
                        evaluations=checkpoint.consumed,
                        wall_seconds=time.perf_counter() - self._started,
                        explanations=self.explanations,
                    )
                    self._feed_archive()
                    self.state = CampaignState.FINISHED
                    return self.state
                self.exhausted = set(checkpoint.exhausted)
                self.tried_points = {
                    tuple(key) for key in checkpoint.tried_keys
                }
                self.attempt = checkpoint.attempt
                self.attempts_without_improvement = (
                    checkpoint.attempts_without_improvement
                )
                self.current = dict(checkpoint.current_point)
                dse.space.validate(self.current)
                # Replay the incumbent through the cost model
                # (bit-identical, and usually a cache hit) without
                # recording a trial or consuming budget.
                self.current_eval = dse.evaluator.evaluate(self.current)
                self.base_evaluations = (
                    dse.evaluator.evaluations - checkpoint.consumed
                )
                self._last_checkpoint_attempt = self.attempt
            else:
                self.base_evaluations = dse.evaluator.evaluations
                self.current = dict(
                    self.initial_point or dse.space.minimum_point()
                )
                dse.space.validate(self.current)
                self.current_eval = dse._evaluate(
                    self.current,
                    self.trials,
                    note="initial point",
                    tracer=self.tracer,
                    step=0,
                    candidate_index=0,
                )
                self.tried_points = {dse.space.point_key(self.current)}
        except BaseException as exc:
            self.state = CampaignState.FAILED
            self.error = exc
            raise
        self._feed_archive()
        self.state = CampaignState.RUNNING
        return self.state

    def step(self) -> CampaignState:
        """Run exactly one acquisition attempt (paper steps 1-6).

        Returns the state after the attempt: still ``RUNNING``,
        ``FINISHED`` (budget/patience/mitigation exhaustion — the result
        is ready), or raises after transitioning to ``FAILED`` when the
        failure-rate circuit breaker trips (a resumable checkpoint is
        written first when configured).

        The attempt is split into :meth:`begin_attempt` (budget gate,
        analysis, acquisition — paper steps 1-5), the candidate
        evaluation loop, and :meth:`finish_attempt` (incumbent update,
        patience, breaker, checkpoint — step 6), so the ask/tell
        protocol (:class:`repro.optim.protocol.ExplainableEngine`) can
        interpose an external evaluator between the same two halves and
        stay bit-identical by construction.
        """
        candidates = self.begin_attempt()
        if candidates is None:
            return self.state
        dse = self.dse
        attempt = self.attempt
        evaluated = []
        for index, candidate in enumerate(candidates):
            if dse._budget_left(self.base_evaluations) <= 0:
                break
            self.tried_points.add(dse.space.point_key(candidate.point))
            evaluation = dse._evaluate(
                candidate.point,
                self.trials,
                note=candidate.reason,
                tracer=self.tracer,
                step=attempt,
                candidate_index=index,
                breaker=self.breaker,
            )
            if evaluation is not None:
                evaluated.append((candidate, evaluation))
            if self.breaker.tripped:
                # Abort at the attempt boundary: finish the update with
                # whatever evaluated, checkpoint, then raise.
                break
        return self.finish_attempt(evaluated)

    def begin_attempt(self):
        """Steps 1-5 of one attempt: budget gate, bottleneck analysis,
        and candidate acquisition.

        Returns the acquired candidate list, or ``None`` when the
        attempt terminated the campaign instead (budget exhausted, or no
        mitigating candidates remain) — the state is then FINISHED and
        the result is ready.  A non-``None`` return leaves an attempt
        *open*: the caller must evaluate (a budget-capped prefix of) the
        candidates and close the attempt with :meth:`finish_attempt`.
        """
        if self.state is not CampaignState.RUNNING:
            raise CampaignStateError(
                f"cannot step a {self.state.value} campaign"
            )
        dse = self.dse
        tracer = self.tracer
        if dse._budget_left(self.base_evaluations) <= 0:
            tracer.emit(
                BudgetExhausted(
                    step=self.attempt,
                    consumed=dse.evaluator.evaluations
                    - self.base_evaluations,
                    budget=dse.max_evaluations,
                )
            )
            self._terminate()
            return None
        self.attempt += 1
        attempt = self.attempt
        current, current_eval = self.current, self.current_eval
        tracer.emit(
            StepStarted(
                step=attempt,
                incumbent=dict(current),
                objective=current_eval.costs.get(dse.objective, math.inf),
                feasible=all_satisfied(current_eval.costs, dse.constraints),
            )
        )
        predictions, why, analysis = dse._analyze(current, current_eval)
        tracer.emit(BottleneckIdentified(step=attempt, **analysis))
        for prediction in predictions:
            tracer.emit(
                MitigationPredicted(
                    step=attempt,
                    parameter=prediction.parameter,
                    value=float(prediction.value),
                    subfunctions=list(prediction.contributing_subfunctions),
                )
            )
        candidates = dse._acquire(
            current, predictions, self.exhausted, self.tried_points
        )
        if not current_eval.mappable:
            candidates = (
                dse._compatibility_bundle(current, self.tried_points)
                + candidates
            )[: dse.max_candidates]
        if not candidates:
            # §4.3: when bottleneck information is exhausted the DSE
            # resorts to its black-box counterpart — neighbour moves.
            candidates = dse._neighbor_fallback(current, self.tried_points)
            if candidates:
                why += "; mitigation exhausted, sampling neighbours"
        for index, candidate in enumerate(candidates):
            tracer.emit(
                CandidateGenerated(
                    step=attempt,
                    candidate_index=index,
                    parameter=candidate.parameter,
                    value=_jsonable(candidate.value),
                    reason=candidate.reason,
                )
            )
        self.explanations.append(
            f"[attempt {attempt}] {why}; acquiring "
            f"{[f'{c.parameter}={c.value}' for c in candidates]}"
        )
        if not candidates:
            self.explanations.append(
                f"[attempt {attempt}] no mitigating candidates remain; "
                "terminating"
            )
            self.finished = True
            self._terminate()
            return None
        return candidates

    def finish_attempt(self, evaluated) -> CampaignState:
        """Step 6 of one attempt: incumbent update, patience, breaker.

        ``evaluated`` is the ``(candidate, evaluation)`` list for the
        candidates of the attempt opened by :meth:`begin_attempt` that
        were successfully evaluated (quarantined candidates are already
        recorded in the trial ledger and excluded here).
        """
        if self.state is not CampaignState.RUNNING:
            raise CampaignStateError(
                f"cannot step a {self.state.value} campaign"
            )
        dse = self.dse
        tracer = self.tracer
        attempt = self.attempt
        current, current_eval = self.current, self.current_eval
        new_point, new_eval, decision = dse._update(
            current, current_eval, evaluated, self.exhausted
        )
        improved = dse.space.point_key(new_point) != dse.space.point_key(
            current
        )
        tracer.emit(
            IncumbentUpdated(
                step=attempt,
                point=dict(new_point),
                objective=new_eval.costs.get(dse.objective, math.inf),
                decision=decision,
                improved=improved,
            )
        )
        self.explanations.append(f"[attempt {attempt}] {decision}")
        if not improved:
            self.attempts_without_improvement += 1
            if self.attempts_without_improvement >= dse.patience:
                self.explanations.append(
                    f"[attempt {attempt}] no improvement for "
                    f"{dse.patience} attempts; terminating"
                )
                self.finished = True
        else:
            self.attempts_without_improvement = 0
            self.exhausted.clear()
            self.current, self.current_eval = dict(new_point), new_eval
        self._feed_archive()
        if self.breaker.tripped and not self.finished:
            # Systemic fault (REPRO_MAX_FAILURE_RATE exceeded): persist a
            # resumable snapshot, then abort instead of grinding on.
            self.explanations.append(
                f"[attempt {attempt}] circuit breaker tripped: "
                f"{self.breaker.failures} of {self.breaker.total} candidate "
                f"evaluations failed; aborting after checkpoint"
            )
            if self.checkpoint_path:
                self._checkpoint(finished=False)
            tracer.flush()
            self.state = CampaignState.FAILED
            self.error = self.breaker.systemic_fault(
                attempt=attempt, checkpoint=self.checkpoint_path
            )
            raise self.error
        if self.finished:
            return self._terminate()
        if self.checkpoint_path and attempt % self.checkpoint_every == 0:
            self._checkpoint(finished=False)
        return self.state

    def pause(self) -> CampaignState:
        """RUNNING -> CHECKPOINTED at the current attempt boundary.

        Persists a resumable snapshot (when a checkpoint path is
        configured and the boundary is not already covered by the
        periodic snapshot) and flushes the journal, so a paused campaign
        survives a process kill exactly like a checkpointed one.
        """
        if self.state is not CampaignState.RUNNING:
            raise CampaignStateError(
                f"cannot pause a {self.state.value} campaign"
            )
        if (
            self.checkpoint_path
            and self._last_checkpoint_attempt != self.attempt
        ):
            self._checkpoint(finished=False)
        else:
            self.tracer.flush(checkpoint=True)
        self.state = CampaignState.CHECKPOINTED
        return self.state

    def resume(self) -> CampaignState:
        """CHECKPOINTED -> RUNNING (in-process; cross-process resume goes
        through ``resume_from`` on a fresh machine)."""
        if self.state is not CampaignState.CHECKPOINTED:
            raise CampaignStateError(
                f"cannot resume a {self.state.value} campaign"
            )
        self.state = CampaignState.RUNNING
        return self.state

    def cancel(self) -> CampaignState:
        """Cancel at the current attempt boundary.

        A cancelled campaign's journal is a strict prefix of the solo
        run's journal (no terminal events are fabricated) and its
        checkpoint remains resumable, so cancellation is reversible by
        resubmission.
        """
        if self.state.terminal:
            raise CampaignStateError(
                f"cannot cancel a {self.state.value} campaign"
            )
        if self.state in (CampaignState.RUNNING, CampaignState.CHECKPOINTED):
            if (
                self.checkpoint_path
                and self._last_checkpoint_attempt != self.attempt
            ):
                self._checkpoint(finished=False)
            else:
                self.tracer.flush(checkpoint=True)
        self.state = CampaignState.CANCELLED
        return self.state

    def result(self) -> DSEResult:
        """The campaign outcome; only a FINISHED campaign has one."""
        if self.state is not CampaignState.FINISHED or self._result is None:
            raise CampaignStateError(
                f"no result: campaign is {self.state.value}"
            )
        return self._result

    # -- internals -----------------------------------------------------------

    def _feed_archive(self) -> None:
        """Feed trials recorded since the last boundary to the Pareto
        archive (no-op without one).  Inserts are idempotent, so crash
        replay through this path is safe."""
        if self.archive is None:
            return
        for trial in self.trials[self._archive_fed:]:
            self.archive.insert_trial(trial)
        self._archive_fed = len(self.trials)
        self.archive.flush()

    def _terminate(self) -> CampaignState:
        """The post-loop epilogue of ``run()``: summary event, final
        checkpoint, flush, result construction."""
        self._feed_archive()
        dse = self.dse
        consumed = dse.evaluator.evaluations - self.base_evaluations
        best = select_best(
            self.trials, dse.constraints, objective=dse.objective
        )
        self.tracer.emit(
            RunSummary(
                step=self.attempt,
                technique="explainable",
                model=dse.evaluator.workload.name,
                evaluations=consumed,
                best_objective=best.objective if best else math.inf,
                found_feasible=best is not None,
                counters=dse._perf_counters(),
            )
        )
        if self.checkpoint_path:
            self._checkpoint(finished=self.finished)
        self.tracer.flush()
        self._result = DSEResult(
            technique="explainable",
            model=dse.evaluator.workload.name,
            trials=self.trials,
            best=best,
            evaluations=consumed,
            wall_seconds=time.perf_counter() - self._started,
            explanations=self.explanations,
        )
        self.state = CampaignState.FINISHED
        return self.state

    def _checkpoint(self, finished: bool) -> None:
        self.dse._write_checkpoint(
            self.checkpoint_path,
            self.tracer,
            trials=self.trials,
            explanations=self.explanations,
            current=self.current,
            exhausted=self.exhausted,
            tried_points=self.tried_points,
            attempt=self.attempt,
            attempts_without_improvement=self.attempts_without_improvement,
            consumed=self.dse.evaluator.evaluations - self.base_evaluations,
            finished=finished,
        )
        self._last_checkpoint_attempt = self.attempt
