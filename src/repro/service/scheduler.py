"""Multi-tenant campaign scheduler: deterministic weighted-fair slicing.

The scheduler decides *which campaign runs next and for how many steps*;
it never runs anything itself.  The :class:`~repro.service.service
.CampaignService` asks for one :class:`Slice` at a time, executes it on
the shared worker fleet, reports the outcome, and asks again — so the
interleaving of N campaigns is a pure function of the submission
sequence and the per-slice outcomes, never of wall-clock, thread timing,
or dict iteration order.  Same submissions ⇒ same slice sequence ⇒ the
per-campaign event streams (and therefore journals) are identical to
each campaign running alone.

Policy:

* **Admission** — at most ``max_concurrent`` campaigns are resident
  (interleaving) at once; the rest wait in global submission order
  (``REPRO_SERVICE_MAX_CONCURRENT``).
* **Weighted fairness** — tenants take turns in first-submission order;
  a tenant's turn grants ``quantum x weight`` steps
  (``REPRO_SERVICE_STEP_QUANTUM`` x the tenant's weight) to its
  least-recently-run campaign, round-robin within the tenant.
* **Quotas** — each tenant has an optional total step budget
  (``REPRO_TENANT_QUOTA`` or per-tenant override).  A tenant that
  exhausts its quota is *starved*, not failed: its campaigns stay parked
  (checkpointed, resumable) and are reported as ``quota_exhausted``
  until :meth:`grant_quota` raises the budget.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.perf.knobs import (
    service_max_concurrent,
    service_step_quantum,
    tenant_step_quota,
)

__all__ = ["Slice", "TenantState", "CampaignScheduler", "SchedulerError"]


class SchedulerError(RuntimeError):
    """An unknown campaign/tenant or an invalid scheduling operation."""


@dataclass(frozen=True)
class Slice:
    """One scheduling decision: run ``campaign_id`` for up to ``steps``
    acquisition attempts."""

    campaign_id: str
    steps: int
    tenant: str


@dataclass
class TenantState:
    """Accounting for one tenant."""

    name: str
    weight: int = 1
    quota: Optional[int] = None  # total step budget; None = unlimited
    steps_used: int = 0
    #: Campaigns of this tenant currently resident, in round-robin order.
    runnable: Deque[str] = field(default_factory=deque)

    @property
    def quota_left(self) -> Optional[int]:
        if self.quota is None:
            return None
        return max(0, self.quota - self.steps_used)

    @property
    def quota_exhausted(self) -> bool:
        return self.quota is not None and self.steps_used >= self.quota

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.name,
            "weight": self.weight,
            "quota": self.quota,
            "steps_used": self.steps_used,
            "quota_exhausted": self.quota_exhausted,
        }


class CampaignScheduler:
    """Deterministic weighted-fair round-robin over tenants' campaigns.

    Args:
        quantum: Steps granted per unit of tenant weight per turn
            (``None`` reads ``REPRO_SERVICE_STEP_QUANTUM``, default 1 —
            attempt-level interleaving).
        max_concurrent: Resident-campaign cap (``None`` reads
            ``REPRO_SERVICE_MAX_CONCURRENT``, default 4).
        default_quota: Step budget for tenants without an explicit one
            (``None`` reads ``REPRO_TENANT_QUOTA``; unset = unlimited).
    """

    def __init__(
        self,
        quantum: Optional[int] = None,
        max_concurrent: Optional[int] = None,
        default_quota: Optional[int] = "env",
    ):
        self.quantum = service_step_quantum(quantum)
        self.max_concurrent = service_max_concurrent(max_concurrent)
        self.default_quota = (
            tenant_step_quota() if default_quota == "env" else default_quota
        )
        #: Tenants in first-submission order (the round-robin ring).
        self._tenant_order: List[str] = []
        self._tenants: Dict[str, TenantState] = {}
        #: Submitted, not yet resident, in global submission order.
        self._waiting: Deque[str] = deque()
        self._tenant_of: Dict[str, str] = {}
        #: Resident campaign ids (admitted, not yet finished).
        self._resident: set = set()
        self._finished: set = set()
        #: Ring position: index of the tenant whose turn is next.
        self._ring = 0
        #: The slice currently in flight (at most one).
        self._in_flight: Optional[str] = None
        #: Overload pressure: when True (the service's slice-latency
        #: watermark tripped), every slice is clamped to one attempt so
        #: latency-sensitive campaigns stop waiting behind fat quanta.
        #: Shrinking the quantum never changes journal bytes — the flush
        #: partition invariance of the state machine guarantees that —
        #: so pressure can flap freely without hurting determinism of
        #: results.
        self.pressure = False

    # -- tenants -------------------------------------------------------------

    def tenant(self, name: str) -> TenantState:
        """The tenant's state (raises for unknown tenants)."""
        try:
            return self._tenants[name]
        except KeyError:
            raise SchedulerError(f"unknown tenant {name!r}") from None

    def register_tenant(
        self,
        name: str,
        weight: Optional[int] = None,
        quota: Optional[int] = "default",
    ) -> TenantState:
        """Register (or update) a tenant.

        First registration fixes the tenant's position in the fairness
        ring.  ``weight``/``quota`` update the existing record when
        given; ``quota="default"`` keeps the current (or default) quota.
        """
        state = self._tenants.get(name)
        if state is None:
            state = TenantState(
                name=name,
                weight=max(1, int(weight)) if weight is not None else 1,
                quota=self.default_quota if quota == "default" else quota,
            )
            self._tenants[name] = state
            self._tenant_order.append(name)
            return state
        if weight is not None:
            state.weight = max(1, int(weight))
        if quota != "default":
            state.quota = quota
        return state

    def grant_quota(self, name: str, extra_steps: int) -> TenantState:
        """Raise a tenant's step budget (un-starves its campaigns)."""
        state = self.tenant(name)
        if state.quota is not None:
            state.quota += int(extra_steps)
        return state

    # -- campaign lifecycle --------------------------------------------------

    def submit(self, campaign_id: str, tenant: str = "default") -> None:
        """Queue a campaign for admission (global submission order)."""
        if campaign_id in self._tenant_of:
            raise SchedulerError(f"duplicate campaign id {campaign_id!r}")
        self.register_tenant(tenant)
        self._tenant_of[campaign_id] = tenant
        self._waiting.append(campaign_id)

    def readmit(self, campaign_id: str) -> None:
        """Re-queue a previously removed/finished campaign (the expired
        -with-fresh-deadline path): it rejoins the waiting queue at the
        back, exactly like a new submission of the same id."""
        tenant = self._tenant_of.get(campaign_id)
        if tenant is None:
            raise SchedulerError(f"unknown campaign {campaign_id!r}")
        if (
            campaign_id in self._waiting
            or campaign_id in self._resident
        ):
            raise SchedulerError(
                f"campaign {campaign_id!r} is still scheduled"
            )
        self._finished.discard(campaign_id)
        self._waiting.append(campaign_id)

    def remove(self, campaign_id: str) -> None:
        """Drop a campaign (cancelled/failed) wherever it is."""
        tenant = self._tenant_of.get(campaign_id)
        if tenant is None:
            raise SchedulerError(f"unknown campaign {campaign_id!r}")
        if campaign_id in self._waiting:
            self._waiting.remove(campaign_id)
        state = self._tenants[tenant]
        if campaign_id in state.runnable:
            state.runnable.remove(campaign_id)
        self._resident.discard(campaign_id)
        self._finished.add(campaign_id)
        if self._in_flight == campaign_id:
            self._in_flight = None

    # -- scheduling ----------------------------------------------------------

    def _admit(self) -> None:
        while self._waiting and len(self._resident) < self.max_concurrent:
            campaign_id = self._waiting.popleft()
            tenant = self._tenants[self._tenant_of[campaign_id]]
            tenant.runnable.append(campaign_id)
            self._resident.add(campaign_id)

    def next_slice(self) -> Optional[Slice]:
        """The next scheduling decision, or ``None`` when no tenant has
        both runnable campaigns and quota.

        At most one slice may be in flight: the previous slice must be
        :meth:`report`-ed before the next one is issued (the service
        executes slices strictly one at a time — that serialization is
        what makes the interleaving deterministic).
        """
        if self._in_flight is not None:
            raise SchedulerError(
                f"slice for {self._in_flight!r} is still in flight"
            )
        self._admit()
        order = self._tenant_order
        for offset in range(len(order)):
            tenant = self._tenants[order[(self._ring + offset) % len(order)]]
            if not tenant.runnable or tenant.quota_exhausted:
                continue
            campaign_id = tenant.runnable.popleft()
            steps = 1 if self.pressure else self.quantum * tenant.weight
            if tenant.quota_left is not None:
                steps = min(steps, tenant.quota_left)
            self._ring = (self._ring + offset + 1) % len(order)
            self._in_flight = campaign_id
            return Slice(
                campaign_id=campaign_id, steps=steps, tenant=tenant.name
            )
        return None

    def report(
        self, campaign_id: str, steps_done: int, *, done: bool = False
    ) -> None:
        """Account a finished slice; re-queues the campaign unless done."""
        if self._in_flight != campaign_id:
            raise SchedulerError(
                f"no slice in flight for campaign {campaign_id!r}"
            )
        self._in_flight = None
        tenant = self._tenants[self._tenant_of[campaign_id]]
        tenant.steps_used += int(steps_done)
        if done:
            self._resident.discard(campaign_id)
            self._finished.add(campaign_id)
        else:
            tenant.runnable.append(campaign_id)

    # -- introspection -------------------------------------------------------

    @property
    def idle(self) -> bool:
        """No waiting or resident campaigns remain."""
        return not self._waiting and not self._resident

    @property
    def waiting_count(self) -> int:
        """Campaigns queued for admission (the shed-bound population)."""
        return len(self._waiting)

    @property
    def starved(self) -> bool:
        """Work remains but every tenant holding it is out of quota."""
        if self.idle or self._in_flight is not None:
            return False
        if any(
            not t.quota_exhausted and t.runnable
            for t in self._tenants.values()
        ):
            return False
        # Waiting campaigns could still be admitted to a tenant with quota.
        for campaign_id in self._waiting:
            if not self._tenants[self._tenant_of[campaign_id]].quota_exhausted:
                if len(self._resident) < self.max_concurrent:
                    return False
        return True

    def campaign_phase(self, campaign_id: str) -> str:
        """``waiting`` | ``resident`` | ``done`` for a known campaign."""
        if campaign_id in self._waiting:
            return "waiting"
        if campaign_id in self._resident:
            return "resident"
        if campaign_id in self._finished:
            return "done"
        raise SchedulerError(f"unknown campaign {campaign_id!r}")

    def tenants(self) -> List[TenantState]:
        return [self._tenants[name] for name in self._tenant_order]
