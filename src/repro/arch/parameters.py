"""Design-space parameter definitions.

The DSE problem (paper §A.1) is a discrete constrained minimisation over
integer/real/categorical parameters whose values come from explicit lists
or generator expressions.  :class:`Parameter` captures one such axis.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Tuple

__all__ = ["Parameter", "geometric_values", "linear_values"]


def geometric_values(start: int, stop: int, ratio: int = 2) -> Tuple[int, ...]:
    """Geometric progression ``start, start*ratio, ... <= stop`` (inclusive)."""
    if start < 1 or ratio < 2:
        raise ValueError("start must be >= 1 and ratio >= 2")
    values = []
    v = start
    while v <= stop:
        values.append(v)
        v *= ratio
    return tuple(values)


def linear_values(step: int, count: int) -> Tuple[int, ...]:
    """Arithmetic progression ``step, 2*step, ..., count*step``."""
    if step < 1 or count < 1:
        raise ValueError("step and count must be >= 1")
    return tuple(step * i for i in range(1, count + 1))


@dataclass(frozen=True)
class Parameter:
    """One discrete design-space axis.

    Attributes:
        name: Unique parameter name (e.g. ``"pes"``).
        values: Ordered tuple of admissible values.  Numeric parameters must
            be sorted ascending; categorical parameters keep their listed
            order but are never rounded.
        categorical: True when values are unordered labels.
    """

    name: str
    values: Tuple[Any, ...]
    categorical: bool = False

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"parameter {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"parameter {self.name!r} has duplicate values")
        if not self.categorical:
            if list(self.values) != sorted(self.values):
                raise ValueError(
                    f"numeric parameter {self.name!r} values must be sorted"
                )

    @property
    def cardinality(self) -> int:
        return len(self.values)

    @property
    def minimum(self) -> Any:
        return self.values[0]

    @property
    def maximum(self) -> Any:
        return self.values[-1]

    def index_of(self, value: Any) -> int:
        """Index of an exact value.

        Raises:
            ValueError: if ``value`` is not in the parameter's value list.
        """
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"{value!r} not a valid value for parameter {self.name!r}"
            ) from None

    def contains(self, value: Any) -> bool:
        return value in self.values

    def round_up(self, target: float) -> Any:
        """Smallest admissible value >= ``target`` (else the maximum).

        The paper (§4.5): "if a predicted value is not present in the defined
        design space (e.g., non-power-of-2), the DSE rounds it up to the
        closest value".
        """
        if self.categorical:
            raise TypeError(f"cannot round categorical parameter {self.name!r}")
        idx = bisect.bisect_left(self.values, target)
        if idx >= len(self.values):
            return self.values[-1]
        return self.values[idx]

    def round_down(self, target: float) -> Any:
        """Largest admissible value <= ``target`` (else the minimum)."""
        if self.categorical:
            raise TypeError(f"cannot round categorical parameter {self.name!r}")
        idx = bisect.bisect_right(self.values, target) - 1
        if idx < 0:
            return self.values[0]
        return self.values[idx]

    def neighbors(self, value: Any) -> Tuple[Any, ...]:
        """Immediately adjacent values (for local-search baselines)."""
        idx = self.index_of(value)
        out = []
        if idx > 0:
            out.append(self.values[idx - 1])
        if idx + 1 < len(self.values):
            out.append(self.values[idx + 1])
        return tuple(out)
