"""Accelerator architecture template and design-space definitions."""

from repro.arch.accelerator import (
    AcceleratorConfig,
    build_edge_design_space,
    config_from_point,
    point_from_config,
)
from repro.arch.design_space import DesignPoint, DesignSpace
from repro.arch.parameters import Parameter, geometric_values, linear_values
from repro.arch.templates import (
    build_cloud_design_space,
    edge_tpu_like_point,
    eyeriss_like_point,
)

__all__ = [
    "AcceleratorConfig",
    "DesignPoint",
    "DesignSpace",
    "Parameter",
    "build_cloud_design_space",
    "build_edge_design_space",
    "edge_tpu_like_point",
    "eyeriss_like_point",
    "config_from_point",
    "geometric_values",
    "linear_values",
    "point_from_config",
]
