"""Accelerator architecture template and the Table 1 edge design space.

The template follows the spatial-architecture model shared by Eyeriss-like
edge accelerators and the dMazeRunner/Timeloop cost models: a 2-D array of
PEs with private register files (L1), a shared scratchpad (L2), a DMA engine
to off-chip memory, and four dedicated NoCs — one per read/write operand
(input activations, weights, partial-sum reads, output writes).  Each NoC
has a configurable datawidth, a number of physical unicast links (expressed
in Table 1 as a fraction of the PE count), and a time-sharing ("virtual
unicast") degree for serving more PE groups than physical links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Tuple

from repro.arch.design_space import DesignPoint, DesignSpace
from repro.arch.parameters import Parameter, geometric_values, linear_values
from repro.workloads.layers import OPERANDS, Operand

__all__ = [
    "AcceleratorConfig",
    "build_edge_design_space",
    "config_from_point",
    "point_from_config",
    "OFFCHIP_BW_VALUES_MBPS",
]

#: Table 1 off-chip bandwidth options (MB per second).
OFFCHIP_BW_VALUES_MBPS: Tuple[int, ...] = (
    1024,
    2048,
    4096,
    6400,
    8192,
    12800,
    19200,
    25600,
    38400,
    51200,
)

#: Table 1 virtual unicast (time-sharing) options: 2**(3i), i in [0, 3].
VIRT_UNICAST_VALUES: Tuple[int, ...] = (1, 8, 64, 512)


@dataclass(frozen=True)
class AcceleratorConfig:
    """A concrete hardware configuration of the accelerator template.

    Attributes:
        pes: Number of processing elements (each one scalar MAC per cycle).
        l1_bytes: Register-file (local buffer) capacity per PE, bytes.
        l2_kb: Shared scratchpad capacity, kilobytes.
        offchip_bw_mbps: Off-chip DRAM bandwidth, megabytes per second.
        noc_datawidth_bits: Datawidth of each operand NoC, bits.
        phys_unicast_factor: Per-operand multiplier ``i``; the NoC provides
            ``pes * i / 64`` concurrent physical unicast links (Table 1).
        virt_unicast: Per-operand time-sharing degree over a physical link.
        freq_mhz: Accelerator clock (500 MHz in all paper experiments).
        bytes_per_element: Data precision (int16 -> 2).
    """

    pes: int
    l1_bytes: int
    l2_kb: int
    offchip_bw_mbps: int
    noc_datawidth_bits: int
    phys_unicast_factor: Mapping[Operand, int]
    virt_unicast: Mapping[Operand, int]
    freq_mhz: int = 500
    bytes_per_element: int = 2

    def __post_init__(self) -> None:
        if self.pes < 1 or self.l1_bytes < 1 or self.l2_kb < 1:
            raise ValueError("pes, l1_bytes and l2_kb must be positive")
        if self.offchip_bw_mbps < 1 or self.noc_datawidth_bits < 1:
            raise ValueError("bandwidths must be positive")
        for op in OPERANDS:
            if op not in self.phys_unicast_factor or op not in self.virt_unicast:
                raise ValueError(f"missing NoC configuration for operand {op}")

    # -- derived quantities ---------------------------------------------------

    @property
    def l2_bytes(self) -> int:
        return self.l2_kb * 1024

    @property
    def total_l1_bytes(self) -> int:
        return self.l1_bytes * self.pes

    def physical_links(self, operand: Operand) -> int:
        """Concurrent physical unicast links of ``operand``'s NoC."""
        return max(1, self.pes * self.phys_unicast_factor[operand] // 64)

    def effective_links(self, operand: Operand) -> int:
        """Distinct data streams deliverable per broadcast round, including
        time-shared (virtual) unicasting."""
        return self.physical_links(operand) * self.virt_unicast[operand]

    @property
    def noc_bytes_per_cycle(self) -> float:
        """Bytes deliverable per cycle per physical link."""
        return self.noc_datawidth_bits / 8.0

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Off-chip bytes per accelerator cycle.

        ``MB/s / (cycles/s) = MB/cycle``; with MHz-denominated frequency the
        megas cancel: ``mbps / freq_mhz`` bytes per cycle.
        """
        return self.offchip_bw_mbps / self.freq_mhz

    def describe(self) -> str:
        """One-line summary used in logs and explanations."""
        links = "/".join(str(self.physical_links(op)) for op in OPERANDS)
        virt = "/".join(str(self.virt_unicast[op]) for op in OPERANDS)
        return (
            f"PEs={self.pes} L1={self.l1_bytes}B L2={self.l2_kb}kB "
            f"BW={self.offchip_bw_mbps}MBps NoC={self.noc_datawidth_bits}b "
            f"links={links} virt={virt}"
        )


def build_edge_design_space() -> DesignSpace:
    """The Table 1 design space for edge DNN inference accelerators.

    13 parameters: PEs, L1, L2, off-chip BW, NoC datawidth, and a physical
    plus virtual unicast setting per operand NoC.  Size is
    7*8*7*10*16*(64^4)*(4^4) ~ 2.6e14 hardware configurations.
    """
    params = [
        Parameter("pes", geometric_values(64, 4096)),
        Parameter("l1_bytes", geometric_values(8, 1024)),
        Parameter("l2_kb", geometric_values(64, 4096)),
        Parameter("offchip_bw_mbps", OFFCHIP_BW_VALUES_MBPS),
        Parameter("noc_datawidth", linear_values(16, 16)),
    ]
    for op in OPERANDS:
        params.append(
            Parameter(f"phys_unicast_{op.value}", tuple(range(1, 65)))
        )
    for op in OPERANDS:
        params.append(
            Parameter(f"virt_unicast_{op.value}", VIRT_UNICAST_VALUES)
        )
    return DesignSpace(params)


def config_from_point(
    point: Mapping[str, Any], freq_mhz: int = 500, bytes_per_element: int = 2
) -> AcceleratorConfig:
    """Build an :class:`AcceleratorConfig` from a Table 1 design point."""
    return AcceleratorConfig(
        pes=point["pes"],
        l1_bytes=point["l1_bytes"],
        l2_kb=point["l2_kb"],
        offchip_bw_mbps=point["offchip_bw_mbps"],
        noc_datawidth_bits=point["noc_datawidth"],
        phys_unicast_factor={
            op: point[f"phys_unicast_{op.value}"] for op in OPERANDS
        },
        virt_unicast={op: point[f"virt_unicast_{op.value}"] for op in OPERANDS},
        freq_mhz=freq_mhz,
        bytes_per_element=bytes_per_element,
    )


def point_from_config(config: AcceleratorConfig) -> DesignPoint:
    """Inverse of :func:`config_from_point` (drops freq/precision)."""
    point: DesignPoint = {
        "pes": config.pes,
        "l1_bytes": config.l1_bytes,
        "l2_kb": config.l2_kb,
        "offchip_bw_mbps": config.offchip_bw_mbps,
        "noc_datawidth": config.noc_datawidth_bits,
    }
    for op in OPERANDS:
        point[f"phys_unicast_{op.value}"] = config.phys_unicast_factor[op]
        point[f"virt_unicast_{op.value}"] = config.virt_unicast[op]
    return point
