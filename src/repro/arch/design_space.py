"""The discrete hardware design space and point manipulation utilities.

A *design point* is a ``dict`` mapping parameter names to values.  The
:class:`DesignSpace` validates points, converts them to/from index vectors
(the representation black-box optimizers operate on), samples uniformly,
and enumerates neighbours.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.arch.parameters import Parameter

__all__ = ["DesignSpace", "DesignPoint"]

DesignPoint = Dict[str, Any]


class DesignSpace:
    """An ordered collection of :class:`Parameter` axes.

    The iteration order of parameters is fixed at construction; index
    vectors produced by :meth:`to_indices` follow it.
    """

    def __init__(self, parameters: Sequence[Parameter]):
        if not parameters:
            raise ValueError("design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names in design space")
        self._params: Tuple[Parameter, ...] = tuple(parameters)
        self._by_name: Dict[str, Parameter] = {p.name: p for p in parameters}

    # -- basic introspection --------------------------------------------------

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        return self._params

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._params)

    def parameter(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no parameter named {name!r}") from None

    @property
    def size(self) -> int:
        """Total number of design points (product of cardinalities)."""
        return math.prod(p.cardinality for p in self._params)

    @property
    def log10_size(self) -> float:
        """log10 of the design-space size (spaces overflow display widths)."""
        return sum(math.log10(p.cardinality) for p in self._params)

    # -- point validation and conversion -------------------------------------

    def validate(self, point: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` unless ``point`` is a complete, valid point."""
        missing = [n for n in self.names if n not in point]
        if missing:
            raise ValueError(f"point missing parameters: {missing}")
        extra = [n for n in point if n not in self._by_name]
        if extra:
            raise ValueError(f"point has unknown parameters: {extra}")
        for name, value in point.items():
            if not self._by_name[name].contains(value):
                raise ValueError(
                    f"value {value!r} invalid for parameter {name!r}"
                )

    def to_indices(self, point: Mapping[str, Any]) -> Tuple[int, ...]:
        """Convert a design point to an index vector (parameter order)."""
        return tuple(
            self._by_name[name].index_of(point[name]) for name in self.names
        )

    def from_indices(self, indices: Sequence[int]) -> DesignPoint:
        """Convert an index vector back to a design point."""
        if len(indices) != len(self._params):
            raise ValueError(
                f"expected {len(self._params)} indices, got {len(indices)}"
            )
        point: DesignPoint = {}
        for param, idx in zip(self._params, indices):
            if not 0 <= idx < param.cardinality:
                raise ValueError(
                    f"index {idx} out of range for parameter {param.name!r}"
                )
            point[param.name] = param.values[idx]
        return point

    def clip_indices(self, indices: Sequence[int]) -> Tuple[int, ...]:
        """Clamp an index vector into range (for continuous optimizers)."""
        out = []
        for param, idx in zip(self._params, indices):
            out.append(int(min(max(round(idx), 0), param.cardinality - 1)))
        return tuple(out)

    def point_key(self, point: Mapping[str, Any]) -> Tuple[int, ...]:
        """Hashable canonical key for caching evaluations."""
        return self.to_indices(point)

    # -- sampling and movement -------------------------------------------------

    def minimum_point(self) -> DesignPoint:
        """The point with every parameter at its smallest value.

        The paper uses this as the DSE initial point ("lowest values of
        design parameters in Table 1", §F footnote).
        """
        return {p.name: p.values[0] for p in self._params}

    def maximum_point(self) -> DesignPoint:
        return {p.name: p.values[-1] for p in self._params}

    def random_point(self, rng: random.Random) -> DesignPoint:
        """Uniformly random design point."""
        return {p.name: rng.choice(p.values) for p in self._params}

    def neighbors(self, point: Mapping[str, Any]) -> Iterator[DesignPoint]:
        """All points differing by one step in one parameter."""
        self.validate(point)
        for param in self._params:
            for value in param.neighbors(point[param.name]):
                neighbour = dict(point)
                neighbour[param.name] = value
                yield neighbour

    def with_value(
        self, point: Mapping[str, Any], name: str, value: Any
    ) -> DesignPoint:
        """Copy of ``point`` with one parameter replaced (validated)."""
        param = self.parameter(name)
        if not param.contains(value):
            raise ValueError(f"value {value!r} invalid for parameter {name!r}")
        out = dict(point)
        out[name] = value
        return out

    def grid(self, points_per_axis: int) -> Iterator[DesignPoint]:
        """Stratified grid: up to ``points_per_axis`` evenly spaced values
        per parameter, Cartesian product enumerated lazily."""
        if points_per_axis < 1:
            raise ValueError("points_per_axis must be >= 1")
        choices: List[Tuple[Any, ...]] = []
        for param in self._params:
            k = min(points_per_axis, param.cardinality)
            if k == 1:
                picks = (param.values[0],)
            else:
                step = (param.cardinality - 1) / (k - 1)
                picks = tuple(
                    param.values[round(i * step)] for i in range(k)
                )
            choices.append(tuple(dict.fromkeys(picks)))

        def _product(prefix: DesignPoint, axis: int) -> Iterator[DesignPoint]:
            if axis == len(self._params):
                yield dict(prefix)
                return
            name = self._params[axis].name
            for value in choices[axis]:
                prefix[name] = value
                yield from _product(prefix, axis + 1)
            del prefix[name]

        return _product({}, 0)
