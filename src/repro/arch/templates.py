"""Reference architecture configurations and design-space variants.

Besides the Table 1 edge space, users often want (a) concrete well-known
configurations to evaluate or use as DSE initial points, and (b) a larger
cloud-class space.  The reference points approximate published chips on
this template's parameters (per the paper's Table 4 comparison, the
template models scalar-MAC arrays with data-distribution NoCs, so these
are template-domain analogues, not cycle-accurate replicas).
"""

from __future__ import annotations


from repro.arch.accelerator import OFFCHIP_BW_VALUES_MBPS, VIRT_UNICAST_VALUES
from repro.arch.design_space import DesignPoint, DesignSpace
from repro.arch.parameters import Parameter, geometric_values, linear_values
from repro.workloads.layers import OPERANDS

__all__ = [
    "eyeriss_like_point",
    "edge_tpu_like_point",
    "build_cloud_design_space",
]


def _noc_settings(point: DesignPoint, phys: int, virt: int) -> None:
    for op in OPERANDS:
        point[f"phys_unicast_{op.value}"] = phys
        point[f"virt_unicast_{op.value}"] = virt


def eyeriss_like_point() -> DesignPoint:
    """An Eyeriss-like configuration on the Table 1 axes.

    Eyeriss [8]: 168 PEs (nearest Table 1 value: 128), 512 B RF per PE,
    108 kB shared buffer (nearest: 128 kB), modest off-chip bandwidth, and
    heavily time-multiplexed NoCs (its configurable single bus).
    """
    point: DesignPoint = {
        "pes": 128,
        "l1_bytes": 512,
        "l2_kb": 128,
        "offchip_bw_mbps": 1024,
        "noc_datawidth": 64,
        }
    _noc_settings(point, phys=4, virt=64)
    return point


def edge_tpu_like_point() -> DesignPoint:
    """An Edge-TPU-like configuration on the Table 1 axes.

    The Coral Edge TPU is a ~4 TOPS (int8) systolic design: ~2048
    16-bit-equivalent MACs, multi-megabyte on-chip buffering, and LPDDR4
    bandwidth; systolic forwarding is approximated with wide physical
    unicast provisioning.
    """
    point: DesignPoint = {
        "pes": 2048,
        "l1_bytes": 64,
        "l2_kb": 4096,
        "offchip_bw_mbps": 25600,
        "noc_datawidth": 128,
    }
    _noc_settings(point, phys=32, virt=8)
    return point


def build_cloud_design_space() -> DesignSpace:
    """A cloud-inference-class design space (TPU-scale upper bounds).

    Same axes as Table 1 with the resource ranges extended upward:
    up to 64k PEs, 16 KiB register files, 64 MiB scratchpads, and HBM-class
    off-chip bandwidth.  Constraints would likewise be relaxed (hundreds
    of mm^2, tens of watts); the DSE machinery is unchanged.
    """
    params = [
        Parameter("pes", geometric_values(256, 65536)),
        Parameter("l1_bytes", geometric_values(64, 16384)),
        Parameter("l2_kb", geometric_values(512, 65536)),
        Parameter(
            "offchip_bw_mbps",
            tuple(OFFCHIP_BW_VALUES_MBPS)
            + (102400, 204800, 409600, 819200),
        ),
        Parameter("noc_datawidth", linear_values(32, 16)),
    ]
    for op in OPERANDS:
        params.append(
            Parameter(f"phys_unicast_{op.value}", tuple(range(1, 65)))
        )
    for op in OPERANDS:
        params.append(
            Parameter(f"virt_unicast_{op.value}", VIRT_UNICAST_VALUES)
        )
    return DesignSpace(params)
