"""DSE result serialization: persist runs to JSON and reload them.

Exploration runs are expensive; persisting them lets the CLI dump results
for later comparison, lets dashboards consume them, and lets tests assert
on fixed historical runs.  The format is plain JSON with a schema version.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.dse.result import DSEResult, TrialRecord

__all__ = ["result_to_dict", "result_from_dict", "save_result", "load_result"]

SCHEMA_VERSION = 1


def _encode_float(value: float) -> Any:
    """JSON has no inf/nan; encode them as strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'inf', '-inf', 'nan'
    return value


def _decode_float(value: Any) -> Any:
    if isinstance(value, str) and value in ("inf", "-inf", "nan"):
        return float(value)
    return value


def _encode_costs(costs: Dict[str, float]) -> Dict[str, Any]:
    return {k: _encode_float(v) for k, v in costs.items()}


def _decode_costs(costs: Dict[str, Any]) -> Dict[str, float]:
    return {k: _decode_float(v) for k, v in costs.items()}


def _trial_to_dict(trial: TrialRecord) -> Dict[str, Any]:
    return {
        "index": trial.index,
        "point": dict(trial.point),
        "costs": _encode_costs(dict(trial.costs)),
        "feasible": trial.feasible,
        "mappable": trial.mappable,
        "utilizations": _encode_costs(dict(trial.utilizations)),
        "note": trial.note,
    }


def _trial_from_dict(data: Dict[str, Any]) -> TrialRecord:
    return TrialRecord(
        index=int(data["index"]),
        point=dict(data["point"]),
        costs=_decode_costs(data["costs"]),
        feasible=bool(data["feasible"]),
        mappable=bool(data["mappable"]),
        utilizations=_decode_costs(data.get("utilizations", {})),
        note=str(data.get("note", "")),
    )


def result_to_dict(result: DSEResult) -> Dict[str, Any]:
    """Serialize a DSE result to a JSON-compatible dictionary."""
    return {
        "schema": SCHEMA_VERSION,
        "technique": result.technique,
        "model": result.model,
        "evaluations": result.evaluations,
        "wall_seconds": result.wall_seconds,
        "best_index": result.best.index if result.best else None,
        "trials": [_trial_to_dict(t) for t in result.trials],
        "explanations": list(result.explanations),
    }


def result_from_dict(data: Dict[str, Any]) -> DSEResult:
    """Rebuild a DSE result from its dictionary form.

    Raises:
        ValueError: on schema mismatch or a dangling best index.
    """
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema {schema!r}; expected {SCHEMA_VERSION}"
        )
    trials = [_trial_from_dict(t) for t in data["trials"]]
    best_index = data.get("best_index")
    best = None
    if best_index is not None:
        matches = [t for t in trials if t.index == best_index]
        if not matches:
            raise ValueError(f"best_index {best_index} not among trials")
        best = matches[0]
    return DSEResult(
        technique=str(data["technique"]),
        model=str(data["model"]),
        trials=trials,
        best=best,
        evaluations=int(data["evaluations"]),
        wall_seconds=float(data["wall_seconds"]),
        explanations=list(data.get("explanations", [])),
    )


def save_result(result: DSEResult, path: Union[str, Path]) -> None:
    """Write a result to a JSON file."""
    with open(path, "w") as handle:
        json.dump(result_to_dict(result), handle, indent=2)
        handle.write("\n")


def load_result(path: Union[str, Path]) -> DSEResult:
    """Load a result from a JSON file."""
    with open(path) as handle:
        return result_from_dict(json.load(handle))
