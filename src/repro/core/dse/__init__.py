"""Explainable-DSE framework: constraints, aggregation, and the search loop."""

from repro.core.dse.aggregation import (
    AggregatedPrediction,
    SubFunctionPredictions,
    aggregate_parameter_values,
    default_threshold,
    select_bottleneck_subfunctions,
)
from repro.core.dse.constraints import (
    Constraint,
    Sense,
    all_satisfied,
    constraints_budget,
    violated_constraints,
)
from repro.core.dse.explainable import ExplainableDSE
from repro.core.dse.result import DSEResult, TrialRecord, select_best
from repro.core.dse.serialization import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)

__all__ = [
    "AggregatedPrediction",
    "Constraint",
    "DSEResult",
    "ExplainableDSE",
    "Sense",
    "SubFunctionPredictions",
    "TrialRecord",
    "aggregate_parameter_values",
    "all_satisfied",
    "constraints_budget",
    "default_threshold",
    "load_result",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "select_best",
    "select_bottleneck_subfunctions",
    "violated_constraints",
]
