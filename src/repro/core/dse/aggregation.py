"""Aggregation of per-sub-function bottleneck mitigation (paper §4.4).

Workloads comprise many sub-functions (DNN layers) with diverse execution
characteristics, so per-layer bottleneck analysis yields *multiple*
predicted values for the same parameter.  Explainable-DSE (i) restricts
attention to the bottleneck sub-functions — the top-K layers whose
fractional cost contribution exceeds a threshold — and (ii) resolves value
conflicts per parameter by taking the **minimum** prediction, avoiding
over-aggressive jumps that exhaust the constraints budget for the sake of a
single layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bottleneck.api import ParameterPrediction

__all__ = [
    "SubFunctionPredictions",
    "AggregatedPrediction",
    "default_threshold",
    "select_bottleneck_subfunctions",
    "aggregate_parameter_values",
]


@dataclass(frozen=True)
class SubFunctionPredictions:
    """Bottleneck predictions from one sub-function (layer).

    Attributes:
        name: Sub-function (layer) name.
        weight: Fractional contribution of the sub-function to the total
            cost (its latency x repeats / total latency).
        predictions: Parameter predictions from its bottleneck analysis.
    """

    name: str
    weight: float
    predictions: Tuple[ParameterPrediction, ...]


@dataclass(frozen=True)
class AggregatedPrediction:
    """Final value chosen for a parameter after aggregation."""

    parameter: str
    value: float
    contributing_subfunctions: Tuple[str, ...]
    candidate_values: Tuple[float, ...]


def default_threshold(num_subfunctions: int) -> float:
    """The paper's contribution threshold: ``0.5 * (1 / l)``.

    With ``l`` unique layers, only layers consuming more than half of an
    equal share of the cost are considered bottleneck sub-functions.
    """
    if num_subfunctions < 1:
        raise ValueError("need at least one sub-function")
    return 0.5 / num_subfunctions


def select_bottleneck_subfunctions(
    subfunctions: Sequence[SubFunctionPredictions],
    top_k: int = 5,
    threshold: Optional[float] = None,
) -> List[SubFunctionPredictions]:
    """Keep the top-K sub-functions above the contribution threshold."""
    if threshold is None:
        threshold = default_threshold(max(len(subfunctions), 1))
    eligible = [sf for sf in subfunctions if sf.weight >= threshold]
    eligible.sort(key=lambda sf: -sf.weight)
    return eligible[:top_k]


#: Conflict-resolution rules for multiple predicted values of a parameter
#: (§4.4(i)); the paper selects "min" — "max" converges faster but favours
#: a single sub-function and exhausts the constraints budget, and "mean"
#: sits between — all three are provided for ablation studies.
AGGREGATION_RULES = {
    "min": min,
    "max": max,
    "mean": lambda values: sum(values) / len(values),
}


def aggregate_parameter_values(
    subfunctions: Sequence[SubFunctionPredictions],
    top_k: int = 5,
    threshold: Optional[float] = None,
    rule: str = "min",
) -> List[AggregatedPrediction]:
    """Aggregate per-layer predictions into one value per parameter.

    Applies the sub-function filter, then the conflict-resolution ``rule``
    per parameter — the paper's default is the minimum (§4.4(i):
    "selecting the minimum value as the final prediction").

    Returns:
        One :class:`AggregatedPrediction` per parameter, ordered by the
        weight of the heaviest sub-function that proposed it (so the DSE
        acquires candidates for the most critical bottlenecks first).
    """
    if rule not in AGGREGATION_RULES:
        raise ValueError(
            f"unknown aggregation rule {rule!r}; "
            f"available: {sorted(AGGREGATION_RULES)}"
        )
    resolve = AGGREGATION_RULES[rule]
    selected = select_bottleneck_subfunctions(subfunctions, top_k, threshold)
    by_param: Dict[str, List[Tuple[float, str, float]]] = {}
    for sf in selected:
        for prediction in sf.predictions:
            by_param.setdefault(prediction.parameter, []).append(
                (prediction.value, sf.name, sf.weight)
            )
    aggregated = []
    for parameter, entries in by_param.items():
        values = tuple(v for v, _, _ in entries)
        aggregated.append(
            AggregatedPrediction(
                parameter=parameter,
                value=resolve(values),
                contributing_subfunctions=tuple(name for _, name, _ in entries),
                candidate_values=values,
            )
        )
    weight_of = {
        agg.parameter: max(w for _, _, w in by_param[agg.parameter])
        for agg in aggregated
    }
    aggregated.sort(key=lambda a: -weight_of[a.parameter])
    return aggregated
