"""Explainable-DSE: constraints-aware DSE using bottleneck analysis (§4).

Each *acquisition attempt*:

1. evaluate the current solution ``S`` (cost model + per-layer mapping
   optimization — the tightly-coupled codesign loop of §4.8);
2. pick the critical cost ``CR``: the most-violated inequality constraint
   if any, else the objective;
3. run bottleneck analysis through the matching bottleneck model — the
   resource models for area/power violations, the per-layer latency model
   otherwise — obtaining mitigating (parameter, value) predictions;
4. aggregate predictions across bottleneck sub-functions (top-K layers
   above the contribution threshold; minimum value per parameter, §4.4);
5. acquire one candidate per predicted parameter (all other parameters
   keep their ``S`` values), rounding predictions into the design space
   (§4.5);
6. update ``S`` with constraints-budget awareness: among
   all-constraints-feasible candidates pick the lowest
   ``objective x budget``; while infeasible pick the lowest budget (§4.6).

The run log records a human-readable explanation of every decision — the
capability that gives the framework its name.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.design_space import DesignPoint, DesignSpace
from repro.core.bottleneck.api import BottleneckModel
from repro.core.bottleneck.latency_model import (
    LayerExecutionContext,
    build_latency_bottleneck_model,
)
from repro.core.bottleneck.resource_models import (
    ResourceContext,
    build_area_bottleneck_model,
    build_power_bottleneck_model,
)
from repro.core.dse.aggregation import (
    AggregatedPrediction,
    SubFunctionPredictions,
    aggregate_parameter_values,
)
from repro.core.dse.constraints import (
    Constraint,
    all_satisfied,
    constraints_budget,
    violated_constraints,
)
from repro.core.dse.result import DSEResult, TrialRecord, select_best
from repro.cost.evaluator import CostEvaluator, Evaluation
from repro.resilience.errors import as_repro_error
from repro.resilience.supervisor import FailureRateBreaker
from repro.telemetry.checkpoint import (
    CampaignCheckpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    trials_to_dicts,
    verify_against_journal,
)
from repro.telemetry.events import (
    CandidateEvaluated,
    CandidateFailed,
    deterministic_perf_counters,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = ["ExplainableDSE"]


#: Ledger costs of a quarantined candidate: infeasible under every
#: constraint form (LEQ bounds see ``inf``, GEQ/throughput bounds see 0),
#: so :func:`select_best` can never pick a design that was not evaluated.
_QUARANTINE_COSTS = {
    "latency_ms": math.inf,
    "area_mm2": math.inf,
    "power_w": math.inf,
    "energy_mj": math.inf,
    "throughput": 0.0,
}

#: Parameters nudged upward when a hardware point cannot map the workload
#: at all (fixed-dataflow incompatibility): more time-shared unicast rounds,
#: more physical links, and a larger register file.
_COMPATIBILITY_PARAMS = (
    "virt_unicast_I",
    "virt_unicast_W",
    "virt_unicast_O",
    "virt_unicast_PSUM",
    "phys_unicast_I",
    "phys_unicast_W",
    "phys_unicast_O",
    "phys_unicast_PSUM",
    "l1_bytes",
)


@dataclass
class _Candidate:
    """One acquired candidate: S with one (occasionally a bundle of)
    parameter(s) replaced."""

    parameter: str
    value: object
    point: DesignPoint
    reason: str


class ExplainableDSE:
    """The Explainable-DSE framework (paper §4).

    Args:
        design_space: Hardware design space (Table 1 for the paper's runs).
        evaluator: Cost evaluator (owns the mapper: fixed dataflow or the
            top-N codesign mapper).
        constraints: Inequality constraints (area / power / throughput).
        objective: Cost key minimized (``"latency_ms"``).
        latency_model: Latency bottleneck model; defaults to the §4.7 model.
        area_model / power_model: Resource bottleneck models for constraint
            mitigation; defaults to the built-in ones.
        top_k: Bottleneck sub-functions considered per attempt (§4.4).
        threshold: Sub-function contribution threshold; default
            ``0.5 / unique_layers``.
        max_evaluations: Evaluation (iteration) budget.
        patience: Attempts without incumbent improvement before stopping.
        max_candidates: Cap on candidates acquired per attempt.
        aggregation_rule: Conflict resolution for multi-layer predictions:
            ``"min"`` (paper default), ``"max"``, or ``"mean"`` (§4.4
            ablation).
        budget_aware: When False, the feasible-phase update minimizes the
            raw objective instead of ``objective x constraints budget``
            (§4.6 ablation).
        tracer: Default telemetry tracer for :meth:`run` (overridable per
            run); ``None`` selects the disabled ``NULL_TRACER``.
    """

    def __init__(
        self,
        design_space: DesignSpace,
        evaluator: CostEvaluator,
        constraints: Sequence[Constraint],
        objective: str = "latency_ms",
        latency_model: Optional[BottleneckModel] = None,
        area_model: Optional[BottleneckModel] = None,
        power_model: Optional[BottleneckModel] = None,
        top_k: int = 5,
        threshold: Optional[float] = None,
        max_evaluations: int = 100,
        patience: int = 3,
        max_candidates: int = 8,
        aggregation_rule: str = "min",
        budget_aware: bool = True,
        tracer: Optional[Tracer] = None,
    ):
        self.space = design_space
        self.evaluator = evaluator
        self.constraints = list(constraints)
        self.objective = objective
        self.latency_model = latency_model or build_latency_bottleneck_model()
        self.area_model = area_model or build_area_bottleneck_model()
        self.power_model = power_model or build_power_bottleneck_model()
        self.top_k = top_k
        self.threshold = threshold
        self.max_evaluations = max_evaluations
        self.patience = patience
        self.max_candidates = max_candidates
        self.aggregation_rule = aggregation_rule
        self.budget_aware = budget_aware
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- public API ----------------------------------------------------------

    def run(
        self,
        initial_point: Optional[DesignPoint] = None,
        *,
        tracer: Optional[Tracer] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        resume_from: Optional[object] = None,
    ) -> DSEResult:
        """Explore from ``initial_point`` (default: the minimum point).

        Args:
            tracer: Telemetry tracer receiving structured events for every
                analysis/acquisition/update decision (defaults to the
                instance tracer, itself ``NULL_TRACER`` — a no-op — unless
                configured).  Tracing never alters results.
            checkpoint_path: When set, an atomic crash-safe campaign
                snapshot is written here after every ``checkpoint_every``
                completed attempts (and at termination), enabling
                ``resume_from``.
            checkpoint_every: Attempt interval between snapshots.
            resume_from: A :class:`CampaignCheckpoint` or a path to one.
                The campaign state (incumbent, budget, trial history,
                acquisition bookkeeping) is restored and exploration
                continues mid-campaign; re-evaluating the incumbent does
                not consume budget.  When a path with a sibling journal is
                given, the journal is replayed to verify the snapshot
                first.
        """
        # The step loop lives in repro.service.machine: run() drives the
        # same CampaignStateMachine the campaign service schedules, so a
        # straight run and a service-interleaved (or killed-and-resumed)
        # campaign are bit-identical by construction.
        from repro.service.machine import CampaignState, CampaignStateMachine

        machine = CampaignStateMachine(
            self,
            initial_point,
            tracer=tracer,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
        )
        machine.start()
        while machine.state is CampaignState.RUNNING:
            machine.step()
        return machine.result()

    # -- checkpoint/resume plumbing ---------------------------------------------

    def _perf_counters(self) -> Dict[str, object]:
        """Deterministic evaluator counters (empty for duck-typed
        evaluators without ``perf_summary``, e.g. test stubs)."""
        perf_summary = getattr(self.evaluator, "perf_summary", None)
        if perf_summary is None:
            return {}
        return deterministic_perf_counters(perf_summary())

    def _load_resume(self, resume_from: object) -> CampaignCheckpoint:
        """Load (and, when possible, journal-verify) a resume source."""
        if isinstance(resume_from, CampaignCheckpoint):
            checkpoint = resume_from
        else:
            path = str(resume_from)
            checkpoint = load_checkpoint(path)
            journal = path[: -len(".ckpt")] if path.endswith(".ckpt") else None
            if journal and os.path.exists(journal):
                verify_against_journal(checkpoint, journal)
        if checkpoint.model != self.evaluator.workload.name:
            raise CheckpointError(
                f"checkpoint is for model {checkpoint.model!r}, not "
                f"{self.evaluator.workload.name!r}"
            )
        if checkpoint.objective != self.objective:
            raise CheckpointError(
                f"checkpoint optimizes {checkpoint.objective!r}, not "
                f"{self.objective!r}"
            )
        return checkpoint

    def _write_checkpoint(
        self,
        path: str,
        tracer: Tracer,
        *,
        trials: List[TrialRecord],
        explanations: List[str],
        current: DesignPoint,
        exhausted: Set[str],
        tried_points: Set[Tuple],
        attempt: int,
        attempts_without_improvement: int,
        consumed: int,
        finished: bool,
    ) -> None:
        # Flush-with-fsync first: the on-disk journal must cover every
        # event the snapshot's journal_events references.
        tracer.flush(checkpoint=True)
        manifest = self._perf_counters().get("mapping_cache", {})
        save_checkpoint(
            CampaignCheckpoint(
                model=self.evaluator.workload.name,
                objective=self.objective,
                max_evaluations=self.max_evaluations,
                consumed=consumed,
                attempt=attempt,
                attempts_without_improvement=attempts_without_improvement,
                finished=finished,
                current_point=dict(current),
                exhausted=sorted(exhausted),
                tried_keys=[list(key) for key in sorted(tried_points)],
                trials=trials_to_dicts(trials),
                explanations=list(explanations),
                rng_state=None,  # the core loop is deterministic
                mapping_cache_manifest=manifest,
                journal_events=tracer.events_emitted,
            ),
            path,
        )

    def run_multi_start(
        self,
        starts: int = 3,
        seed: int = 0,
        initial_points: Optional[Sequence[DesignPoint]] = None,
    ) -> DSEResult:
        """Explore from a pool of initial points (paper §C).

        Bottleneck-guided search is greedy; restarting from diverse points
        explores distant promising subspaces.  The evaluation budget is
        split evenly across starts (shared evaluator cache makes repeated
        visits free), and the merged trial log yields one result whose
        ``best`` is the best across all starts.
        """
        import random as _random

        if initial_points is None:
            rng = _random.Random(seed)
            initial_points = [self.space.minimum_point()] + [
                self.space.random_point(rng) for _ in range(starts - 1)
            ]
        per_start = max(1, self.max_evaluations // len(initial_points))
        started = time.perf_counter()
        merged_trials: List[TrialRecord] = []
        merged_explanations: List[str] = []
        total_evaluations = 0
        original_budget = self.max_evaluations
        try:
            self.max_evaluations = per_start
            for index, point in enumerate(initial_points):
                result = self.run(initial_point=point)
                total_evaluations += result.evaluations
                merged_explanations.append(
                    f"=== start {index}: {result.best_objective:.4g} "
                    f"in {result.evaluations} evaluations ==="
                )
                merged_explanations.extend(result.explanations)
                for trial in result.trials:
                    merged_trials.append(
                        TrialRecord(
                            index=len(merged_trials),
                            point=trial.point,
                            costs=trial.costs,
                            feasible=trial.feasible,
                            mappable=trial.mappable,
                            utilizations=trial.utilizations,
                            note=f"start{index}: {trial.note}",
                        )
                    )
        finally:
            self.max_evaluations = original_budget
        best = select_best(
            merged_trials, self.constraints, objective=self.objective
        )
        return DSEResult(
            technique="explainable-multistart",
            model=self.evaluator.workload.name,
            trials=merged_trials,
            best=best,
            evaluations=total_evaluations,
            wall_seconds=time.perf_counter() - started,
            explanations=merged_explanations,
        )

    # -- evaluation bookkeeping -------------------------------------------------

    def _budget_left(self, base: int) -> int:
        return self.max_evaluations - (self.evaluator.evaluations - base)

    def _evaluate(
        self,
        point: DesignPoint,
        trials: List[TrialRecord],
        note: str,
        tracer: Tracer = NULL_TRACER,
        step: int = 0,
        candidate_index: int = -1,
        breaker: Optional[FailureRateBreaker] = None,
    ) -> Optional[Evaluation]:
        """Evaluate one point and record the trial.

        With a ``breaker``, a failed evaluation quarantines the candidate
        (infeasible trial + :class:`CandidateFailed` event) and returns
        ``None`` instead of raising, so the campaign degrades gracefully;
        without one (the initial point) failures propagate.
        """
        if breaker is None:
            evaluation = self.evaluator.evaluate(point)
        else:
            try:
                evaluation = self.evaluator.evaluate(point)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                self._quarantine(
                    point,
                    exc,
                    trials,
                    note=note,
                    tracer=tracer,
                    step=step,
                    candidate_index=candidate_index,
                )
                breaker.record_failure()
                return None
            breaker.record_success()
        return self._record_trial(
            point,
            evaluation,
            trials,
            note=note,
            tracer=tracer,
            step=step,
            candidate_index=candidate_index,
        )

    def _record_trial(
        self,
        point: DesignPoint,
        evaluation: Evaluation,
        trials: List[TrialRecord],
        note: str,
        tracer: Tracer = NULL_TRACER,
        step: int = 0,
        candidate_index: int = -1,
    ) -> Evaluation:
        """Record one successful evaluation: trial ledger + event.

        Shared by :meth:`_evaluate` (inline evaluation) and the ask/tell
        protocol (:class:`repro.optim.protocol.ExplainableEngine`), whose
        driver evaluates externally and tells the result back — both
        paths must write byte-identical ledgers and journals.
        """
        utilizations = {
            c.name: c.utilization(evaluation.costs) for c in self.constraints
        }
        feasible = all_satisfied(evaluation.costs, self.constraints)
        trials.append(
            TrialRecord(
                index=len(trials),
                point=dict(point),
                costs=dict(evaluation.costs),
                feasible=feasible,
                mappable=evaluation.mappable,
                utilizations=utilizations,
                note=note,
            )
        )
        tracer.emit(
            CandidateEvaluated(
                step=step,
                candidate_index=candidate_index,
                point=dict(point),
                costs=dict(evaluation.costs),
                feasible=feasible,
                mappable=evaluation.mappable,
                note=note,
            )
        )
        return evaluation

    def _quarantine(
        self,
        point: DesignPoint,
        exc: Exception,
        trials: List[TrialRecord],
        note: str,
        tracer: Tracer,
        step: int,
        candidate_index: int,
    ) -> None:
        """Record a failed candidate as an infeasible trial + event."""
        error = as_repro_error(exc, "candidate evaluation failed")
        costs = dict(_QUARANTINE_COSTS)
        for constraint in self.constraints:
            # Whatever the constraint sense, these costs are infeasible.
            costs.setdefault(
                constraint.cost_key,
                0.0 if constraint.sense.name == "GEQ" else math.inf,
            )
        costs.setdefault(self.objective, math.inf)
        utilizations = {
            c.name: c.utilization(costs) for c in self.constraints
        }
        trials.append(
            TrialRecord(
                index=len(trials),
                point=dict(point),
                costs=costs,
                feasible=False,
                mappable=False,
                utilizations=utilizations,
                note=f"quarantined ({type(error).__name__}): {note}",
            )
        )
        tracer.emit(
            CandidateFailed(
                step=step,
                candidate_index=candidate_index,
                point=dict(point),
                error=type(error).__name__,
                message=str(error),
                attempts=int(error.context.get("attempts", 1)),
                retryable=bool(error.retryable),
                note=note,
            )
        )

    # -- step 2-4: bottleneck analysis + aggregation -----------------------------

    def _analyze(
        self, point: DesignPoint, evaluation: Evaluation
    ) -> Tuple[List[AggregatedPrediction], str, Dict[str, object]]:
        """Pick the critical cost and produce aggregated predictions.

        Returns ``(predictions, why, analysis)`` where ``analysis`` is the
        structured form of ``why`` — the field set of
        :class:`~repro.telemetry.events.BottleneckIdentified`."""
        violated = violated_constraints(evaluation.costs, self.constraints)
        resource = [
            c for c in violated if c.cost_key in ("area_mm2", "power_w")
        ]
        if resource:
            worst = resource[0]
            return self._analyze_resource(point, evaluation, worst)
        if not evaluation.mappable:
            return self._analyze_incompatibility(point, evaluation)
        return self._analyze_latency(point, evaluation, violated)

    def _analyze_resource(
        self, point: DesignPoint, evaluation: Evaluation, constraint: Constraint
    ) -> Tuple[List[AggregatedPrediction], str, Dict[str, object]]:
        model = (
            self.area_model
            if constraint.cost_key == "area_mm2"
            else self.power_model
        )
        context = ResourceContext(
            config=evaluation.config,
            area=evaluation.area,
            power=evaluation.power,
        )
        predictions = model.predict(
            context,
            current_values=point,
            target_value=constraint.bound,
            extra={"config": evaluation.config},
        )
        aggregated = [
            AggregatedPrediction(
                parameter=p.parameter,
                value=p.value,
                contributing_subfunctions=("resource-model",),
                candidate_values=(p.value,),
            )
            for p in predictions
        ]
        why = (
            f"critical cost = violated constraint {constraint.name} "
            f"({evaluation.costs[constraint.cost_key]:.3g} vs bound "
            f"{constraint.bound:g}); mitigating via {model.name}"
        )
        overshoot = constraint.utilization(evaluation.costs)
        analysis = {
            "critical_cost": constraint.cost_key,
            "kind": "constraint",
            "model": model.name,
            "dominant": [{"name": constraint.name, "share": 1.0}],
            "scaling": overshoot if math.isfinite(overshoot) else None,
            "detail": why,
        }
        return aggregated, why, analysis

    def _analyze_incompatibility(
        self, point: DesignPoint, evaluation: Evaluation
    ) -> Tuple[List[AggregatedPrediction], str, Dict[str, object]]:
        """No feasible mapping exists: relax NoC/RF compatibility limits."""
        aggregated = []
        for parameter in _COMPATIBILITY_PARAMS:
            if parameter not in point:
                continue
            param = self.space.parameter(parameter)
            neighbors = param.neighbors(point[parameter])
            larger = [v for v in neighbors if v > point[parameter]]
            if larger:
                aggregated.append(
                    AggregatedPrediction(
                        parameter=parameter,
                        value=float(larger[0]),
                        contributing_subfunctions=("compatibility",),
                        candidate_values=(float(larger[0]),),
                    )
                )
        unmapped = [
            name
            for name, res in evaluation.layer_results.items()
            if not res.feasible
        ]
        why = (
            f"hardware cannot map layers {unmapped[:3]}"
            f"{'...' if len(unmapped) > 3 else ''}; raising NoC/RF limits"
        )
        analysis = {
            "critical_cost": "mappability",
            "kind": "incompatibility",
            "model": "compatibility",
            "dominant": [{"name": name, "share": 0.0} for name in unmapped[:3]],
            "scaling": None,
            "detail": why,
        }
        return aggregated, why, analysis

    def _analyze_latency(
        self,
        point: DesignPoint,
        evaluation: Evaluation,
        violated: Sequence[Constraint],
    ) -> Tuple[List[AggregatedPrediction], str, Dict[str, object]]:
        workload = self.evaluator.workload
        # Sub-function weights come from the objective model's own tree
        # values (equal to the layer latency for the latency model, the
        # layer energy for the energy model, ...).
        tree_values: Dict[str, float] = {}
        for layer in workload.layers:
            result = evaluation.layer_results[layer.name]
            if not result.feasible:
                continue
            context = LayerExecutionContext(
                layer=layer,
                execution=result.execution,
                config=evaluation.config,
            )
            tree_values[layer.name] = self.latency_model.build_tree(
                context
            ).value
        total_cycles = sum(
            tree_values.get(layer.name, 0.0) * layer.repeats
            for layer in workload.layers
        )
        # When a throughput constraint is violated the whole latency must
        # shrink by a known ratio; push that target into per-layer analysis.
        needed_scaling: Optional[float] = None
        throughput_violations = [
            c for c in violated if c.cost_key in ("latency_ms", "throughput")
        ]
        if throughput_violations:
            needed_scaling = max(
                c.utilization(evaluation.costs) for c in throughput_violations
            )

        subfunctions: List[SubFunctionPredictions] = []
        for layer in workload.layers:
            result = evaluation.layer_results[layer.name]
            if not result.feasible:
                continue
            weight = (
                tree_values[layer.name] * layer.repeats / total_cycles
                if total_cycles
                else 0.0
            )
            context = LayerExecutionContext(
                layer=layer,
                execution=result.execution,
                config=evaluation.config,
            )
            target = (
                result.latency / needed_scaling if needed_scaling else None
            )
            predictions = self.latency_model.predict(
                context,
                current_values=point,
                target_value=target,
                max_findings=3,
                execution=result.execution,
                extra={"config": evaluation.config},
            )
            subfunctions.append(
                SubFunctionPredictions(
                    name=layer.name,
                    weight=weight,
                    predictions=tuple(predictions),
                )
            )
        aggregated = aggregate_parameter_values(
            subfunctions,
            top_k=self.top_k,
            threshold=self.threshold,
            rule=self.aggregation_rule,
        )
        heavy = sorted(subfunctions, key=lambda sf: -sf.weight)[:3]
        why = (
            "critical cost = objective"
            + (f" (throughput unmet, need {needed_scaling:.2f}x)" if needed_scaling else "")
            + "; bottleneck layers: "
            + ", ".join(f"{sf.name} ({sf.weight * 100:.0f}%)" for sf in heavy)
        )
        analysis = {
            "critical_cost": self.objective,
            "kind": "objective",
            "model": self.latency_model.name,
            "dominant": [
                {"name": sf.name, "share": sf.weight} for sf in heavy
            ],
            "scaling": needed_scaling,
            "detail": why,
        }
        return aggregated, why, analysis

    def _compatibility_bundle(
        self, current: DesignPoint, tried_points: Set[Tuple]
    ) -> List[_Candidate]:
        """A single candidate maximizing every NoC's time-sharing degree.

        Time-shared unicast trades latency for compatibility, so jumping
        straight to the maximum virtual-unicast setting guarantees the
        fixed dataflow can execute; later attempts dial resources back via
        the regular bottleneck path.
        """
        point = dict(current)
        changed = False
        for name in point:
            if not name.startswith("virt_unicast_"):
                continue
            maximum = self.space.parameter(name).maximum
            if point[name] != maximum:
                point[name] = maximum
                changed = True
        key = self.space.point_key(point)
        if not changed or key in tried_points:
            return []
        return [
            _Candidate(
                parameter="virt_unicast_*",
                value=self.space.parameter("virt_unicast_I").maximum,
                point=point,
                reason="compatibility bundle: maximize time-shared unicast",
            )
        ]

    def _neighbor_fallback(
        self, current: DesignPoint, tried_points: Set[Tuple]
    ) -> List[_Candidate]:
        """One-step neighbour candidates for when mitigation runs dry."""
        candidates: List[_Candidate] = []
        for param in self.space.parameters:
            for value in param.neighbors(current[param.name]):
                point = self.space.with_value(current, param.name, value)
                key = self.space.point_key(point)
                if key in tried_points:
                    continue
                candidates.append(
                    _Candidate(
                        parameter=param.name,
                        value=value,
                        point=point,
                        reason=f"neighbor-fallback: {param.name} -> {value}",
                    )
                )
                if len(candidates) >= self.max_candidates:
                    return candidates
        return candidates

    # -- step 5: acquisition ----------------------------------------------------

    def _acquire(
        self,
        current: DesignPoint,
        predictions: Sequence[AggregatedPrediction],
        exhausted: Set[str],
        tried_points: Set[Tuple],
    ) -> List[_Candidate]:
        """One candidate per predicted (parameter, value), rounded into the
        space; no-op predictions fall back to a one-step neighbour move in
        the prediction's direction (§4.3: black-box fallback).  Points
        already acquired in this run are skipped so stalled attempts
        diversify onto the next-ranked bottlenecks."""
        candidates: List[_Candidate] = []
        seen_keys = set(tried_points)
        seen_keys.add(self.space.point_key(current))
        for prediction in predictions:
            if len(candidates) >= self.max_candidates:
                break
            name = prediction.parameter
            if name in exhausted or name not in current:
                continue
            param = self.space.parameter(name)
            current_value = current[name]
            # Ties default upward: latency mitigations grow resources, and
            # resource (down-scaling) mitigations predict strictly smaller
            # values when they have anything to do.
            if prediction.value >= current_value:
                rounded = param.round_up(prediction.value)
                direction = +1
            else:
                rounded = param.round_down(prediction.value)
                direction = -1
            if rounded == current_value:
                neighbors = param.neighbors(current_value)
                stepped = [
                    v
                    for v in neighbors
                    if (v > current_value) == (direction > 0)
                ]
                if not stepped:
                    continue
                rounded = stepped[0]
                source = "neighbor-fallback"
            else:
                source = "mitigation"
            point = self.space.with_value(current, name, rounded)
            key = self.space.point_key(point)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            candidates.append(
                _Candidate(
                    parameter=name,
                    value=rounded,
                    point=point,
                    reason=(
                        f"{source}: {name} {current_value} -> {rounded} "
                        f"(predicted {prediction.value:g}; from "
                        f"{','.join(prediction.contributing_subfunctions[:2])})"
                    ),
                )
            )
        candidates.extend(
            self._unicast_bundle(current, candidates, seen_keys)
        )
        return candidates

    def _unicast_bundle(
        self,
        current: DesignPoint,
        candidates: Sequence[_Candidate],
        seen_keys: Set[Tuple],
    ) -> List[_Candidate]:
        """Combine co-predicted NoC capability moves into one candidate.

        Spatial unrolling is gated by *every* operand NoC simultaneously:
        raising one link budget at a time cannot unlock a wider unrolling,
        so when the analysis predicts increases for several unicast
        parameters in the same attempt, a bundle applying them all is
        acquired alongside the single-parameter candidates.
        """
        moves = {
            c.parameter: c.value
            for c in candidates
            if c.parameter.startswith(("virt_unicast_", "phys_unicast_"))
            and c.value > current[c.parameter]
        }
        if len(moves) < 2:
            return []
        point = dict(current)
        point.update(moves)
        key = self.space.point_key(point)
        if key in seen_keys:
            return []
        seen_keys.add(key)
        return [
            _Candidate(
                parameter="unicast-bundle",
                value=tuple(sorted(moves.items())),
                point=point,
                reason=f"bundle of NoC capability moves: {moves}",
            )
        ]

    # -- step 6: constraints-budget-aware update ---------------------------------

    def _update(
        self,
        current: DesignPoint,
        current_eval: Evaluation,
        evaluated: Sequence[Tuple[_Candidate, Evaluation]],
        exhausted: Set[str],
    ) -> Tuple[DesignPoint, Evaluation, str]:
        def budget(evaluation: Evaluation) -> float:
            return constraints_budget(evaluation.costs, self.constraints)

        def objective(evaluation: Evaluation) -> float:
            return evaluation.costs.get(self.objective, math.inf)

        current_violations = len(
            violated_constraints(current_eval.costs, self.constraints)
        )
        # Mono-modal pruning (§4.6): a candidate violating *more* constraints
        # than the incumbent exhausts its parameter's direction.
        for candidate, evaluation in evaluated:
            if (
                len(violated_constraints(evaluation.costs, self.constraints))
                > current_violations
            ):
                exhausted.add(candidate.parameter)

        feasible: List[Tuple[Optional[_Candidate], Evaluation]] = [
            (cand, ev)
            for cand, ev in evaluated
            if all_satisfied(ev.costs, self.constraints)
        ]
        if all_satisfied(current_eval.costs, self.constraints):
            feasible.append((None, current_eval))
        if feasible:
            # Scenario 2: among feasible candidates that actually improve
            # the objective, minimize objective x constraints budget (the
            # discount steers away from marginal gains that exhaust the
            # budget; requiring improvement first keeps progress monotone
            # once feasible).
            def score(item):
                _, ev = item
                if not self.budget_aware or not self.constraints:
                    return objective(ev)
                return objective(ev) * budget(ev)

            incumbent_feasible = all_satisfied(
                current_eval.costs, self.constraints
            )
            pool = feasible
            if incumbent_feasible:
                improving = [
                    (cand, ev)
                    for cand, ev in feasible
                    if cand is not None
                    and objective(ev) < objective(current_eval)
                ]
                pool = improving or [(None, current_eval)]
            winner, winner_eval = min(pool, key=score)
            if winner is None:
                return current, current_eval, "kept incumbent (still best)"
            return (
                winner.point,
                winner_eval,
                f"updated solution via {winner.parameter}={winner.value} "
                f"(objective {objective(winner_eval):.4g}, "
                f"budget {budget(winner_eval):.3f})",
            )

        # Scenario 1: nothing feasible yet; per §4.6 the new solution is the
        # acquired *candidate* with the least constraints budget (the
        # incumbent does not compete, so exploration always progresses
        # toward feasible subspaces), preferring mappable designs.
        def infeasible_score(item):
            _, ev = item
            b = budget(ev)
            return (not ev.mappable, b if math.isfinite(b) else math.inf)

        if not evaluated:
            return current, current_eval, "kept incumbent (no candidates)"
        winner, winner_eval = min(evaluated, key=infeasible_score)
        return (
            winner.point,
            winner_eval,
            f"moved toward feasibility via {winner.parameter}={winner.value} "
            f"(budget {budget(winner_eval):.3f})",
        )
