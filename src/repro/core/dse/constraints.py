"""Inequality constraints and the constraints-budget accounting of §4.6.

A constraint bounds one scalar cost from above (``area <= 75``) or below
(``throughput >= 40``).  Its *utilization* normalizes the cost to the
threshold so that values <= 1 are feasible; the *constraints budget* of a
solution is the mean utilization over all constraints — the quantity the
DSE minimizes while still infeasible and uses to discount the objective
(``objective x budget``) once feasible.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Mapping, Sequence

__all__ = [
    "Sense",
    "Constraint",
    "violated_constraints",
    "constraints_budget",
    "all_satisfied",
]


class Sense(enum.Enum):
    """Direction of an inequality constraint."""

    LEQ = "<="
    GEQ = ">="


@dataclass(frozen=True)
class Constraint:
    """One inequality constraint on a scalar cost.

    Attributes:
        name: Human-readable label (``"area"``).
        cost_key: Key into an evaluation's cost dictionary (``"area_mm2"``).
        bound: Threshold value.
        sense: ``LEQ`` (cost must stay below) or ``GEQ`` (above).
    """

    name: str
    cost_key: str
    bound: float
    sense: Sense = Sense.LEQ

    def __post_init__(self) -> None:
        if self.bound <= 0:
            raise ValueError(f"constraint {self.name!r} needs a positive bound")

    def utilization(self, costs: Mapping[str, float]) -> float:
        """Normalized usage of the constraint budget; <= 1 is feasible.

        ``LEQ``: value / bound.  ``GEQ``: bound / value (an infinite or zero
        cost yields infinite utilization).
        """
        value = costs[self.cost_key]
        if self.sense is Sense.LEQ:
            return value / self.bound
        if value <= 0 or not math.isfinite(value):
            return math.inf
        return self.bound / value

    def satisfied(self, costs: Mapping[str, float]) -> bool:
        return self.utilization(costs) <= 1.0

    def describe(self) -> str:
        return f"{self.name}: {self.cost_key} {self.sense.value} {self.bound:g}"


def violated_constraints(
    costs: Mapping[str, float], constraints: Sequence[Constraint]
) -> List[Constraint]:
    """Constraints not met by ``costs``, most-violated first."""
    out = [c for c in constraints if not c.satisfied(costs)]
    out.sort(key=lambda c: -c.utilization(costs))
    return out


def all_satisfied(
    costs: Mapping[str, float], constraints: Sequence[Constraint]
) -> bool:
    return all(c.satisfied(costs) for c in constraints)


def constraints_budget(
    costs: Mapping[str, float], constraints: Sequence[Constraint]
) -> float:
    """Mean normalized utilization over all constraints (§4.6)."""
    if not constraints:
        return 0.0
    return sum(c.utilization(costs) for c in constraints) / len(constraints)
