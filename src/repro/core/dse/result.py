"""Uniform DSE result records shared by Explainable-DSE and all baselines.

Every optimizer produces the same :class:`DSEResult` so the experiment
harness can compare efficiency (best feasible objective), feasibility
(fraction of acquisitions meeting constraint subsets), agility (evaluations
and wall-clock), and per-attempt objective reduction (Table 3) uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence

from repro.arch.design_space import DesignPoint
from repro.core.dse.constraints import Constraint, all_satisfied

__all__ = ["TrialRecord", "DSEResult", "select_best"]


@dataclass(frozen=True)
class TrialRecord:
    """One evaluated design point during a DSE run."""

    index: int
    point: DesignPoint
    costs: Mapping[str, float]
    feasible: bool
    mappable: bool
    utilizations: Mapping[str, float] = field(default_factory=dict)
    note: str = ""

    @property
    def objective(self) -> float:
        return self.costs.get("latency_ms", math.inf)

    def meets(self, constraint_names: Sequence[str]) -> bool:
        """Feasibility under a subset of constraints (by name)."""
        return all(
            self.utilizations.get(name, math.inf) <= 1.0
            for name in constraint_names
        )


@dataclass
class DSEResult:
    """Outcome of one DSE run.

    Attributes:
        technique: Optimizer label (e.g. ``"explainable"``).
        model: Workload name.
        trials: Every evaluated design point, in evaluation order.
        best: The best feasible trial (None when none was feasible —
            the paper's dashed / starred table cells).
        evaluations: Unique cost-model invocations consumed.
        wall_seconds: Wall-clock time of the run.
        explanations: Human-readable bottleneck-analysis log (empty for
            non-explainable baselines — that is the point of the paper).
    """

    technique: str
    model: str
    trials: List[TrialRecord]
    best: Optional[TrialRecord]
    evaluations: int
    wall_seconds: float
    explanations: List[str] = field(default_factory=list)

    @property
    def best_objective(self) -> float:
        return self.best.objective if self.best else math.inf

    @property
    def found_feasible(self) -> bool:
        return self.best is not None

    def feasibility_fraction(
        self, constraint_names: Optional[Sequence[str]] = None
    ) -> float:
        """Fraction of evaluated solutions meeting the given constraints
        (all recorded constraints when ``constraint_names`` is None)."""
        if not self.trials:
            return 0.0
        if constraint_names is None:
            good = sum(1 for t in self.trials if t.feasible)
        else:
            good = sum(1 for t in self.trials if t.meets(constraint_names))
        return good / len(self.trials)

    def best_so_far_trajectory(self) -> List[float]:
        """Best feasible objective after each trial (inf before the first
        feasible solution) — the Fig. 11 convergence curve."""
        best = math.inf
        out = []
        for t in self.trials:
            if t.feasible and t.objective < best:
                best = t.objective
            out.append(best)
        return out

    def per_attempt_reduction(self) -> float:
        """Geometric-mean per-attempt objective reduction over feasible
        improvements (Table 3's metric), as a fraction (0.30 = 30%).

        Computed over consecutive best-so-far values: each attempt that
        improved the incumbent contributes its reduction ratio; attempts
        that did not improve contribute 1.0 (no reduction).
        """
        trajectory = [v for v in self.best_so_far_trajectory() if math.isfinite(v)]
        if len(trajectory) < 2:
            return 0.0
        ratios = []
        for previous, current in zip(trajectory, trajectory[1:]):
            ratios.append(current / previous if previous > 0 else 1.0)
        log_sum = sum(math.log(r) for r in ratios if r > 0)
        geomean = math.exp(log_sum / len(ratios))
        return 1.0 - geomean


def select_best(
    trials: Sequence[TrialRecord],
    constraints: Sequence[Constraint],
    objective: str = "latency_ms",
) -> Optional[TrialRecord]:
    """Best (lowest-objective) trial meeting all constraints, else None."""
    feasible = [t for t in trials if all_satisfied(t.costs, constraints)]
    if not feasible:
        return None
    return min(feasible, key=lambda t: t.costs.get(objective, math.inf))
