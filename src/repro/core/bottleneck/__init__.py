"""Bottleneck models: trees, the specification API, and the analyzer."""

from repro.core.bottleneck.analyzer import BottleneckFinding, analyze_tree
from repro.core.bottleneck.api import (
    BottleneckModel,
    MitigationContext,
    ParameterPrediction,
)
from repro.core.bottleneck.energy_model import (
    build_energy_bottleneck_model,
    build_energy_tree,
)
from repro.core.bottleneck.latency_model import (
    LayerExecutionContext,
    build_latency_bottleneck_model,
    build_latency_tree,
)
from repro.core.bottleneck.resource_models import (
    ResourceContext,
    build_area_bottleneck_model,
    build_power_bottleneck_model,
)
from repro.core.bottleneck.tree import Node, NodeOp, add, div, leaf, maximum, mul

__all__ = [
    "BottleneckFinding",
    "BottleneckModel",
    "LayerExecutionContext",
    "MitigationContext",
    "Node",
    "NodeOp",
    "ParameterPrediction",
    "ResourceContext",
    "add",
    "analyze_tree",
    "build_area_bottleneck_model",
    "build_energy_bottleneck_model",
    "build_energy_tree",
    "build_latency_bottleneck_model",
    "build_latency_tree",
    "build_power_bottleneck_model",
    "div",
    "leaf",
    "maximum",
    "mul",
]
