"""The bottleneck-model API (paper §4.3, Fig. 7).

Designers (or automation tools) express a domain-specific bottleneck model
to the domain-independent DSE through up to three data structures:

1. a **tree builder** producing the populated bottleneck graph for the
   current solution (Fig. 7a);
2. an **affected-parameters dictionary** mapping factor (node) names to the
   design parameters that mitigate them (Fig. 7b);
3. **mitigation subroutines** — handles keyed by parameter name that
   predict the parameter's next value from its current value, the required
   scaling ``s``, and the execution characteristics (Fig. 7c).

When a parameter has no mitigation handle, the DSE falls back to its
black-box counterpart (sampling the neighbouring value) — exactly the
degradation path the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.bottleneck.analyzer import BottleneckFinding, analyze_tree
from repro.core.bottleneck.tree import Node

__all__ = [
    "MitigationContext",
    "MitigationFn",
    "BottleneckModel",
    "ParameterPrediction",
]


@dataclass(frozen=True)
class MitigationContext:
    """Everything a mitigation subroutine may consult.

    Attributes:
        scaling: Required cost scaling ``s`` from the analyzer.
        finding: The full bottleneck finding (path, contribution, operand
            metadata on the node).
        execution: Domain execution characteristics (for DNN accelerators,
            an :class:`repro.cost.ExecutionInfo`); None for resource models.
        extra: Model-specific context (hardware config, thresholds, ...).
    """

    scaling: float
    finding: BottleneckFinding
    execution: Optional[object] = None
    extra: Mapping[str, Any] = field(default_factory=dict)


#: Predicts a parameter's next (raw, un-rounded) value.
MitigationFn = Callable[[Any, MitigationContext], float]


@dataclass(frozen=True)
class ParameterPrediction:
    """A (parameter, predicted value) pair with its provenance."""

    parameter: str
    value: float
    finding: BottleneckFinding
    source: str  # "mitigation" or "neighbor-fallback"

    def describe(self) -> str:
        return (
            f"{self.parameter} -> {self.value:g} "
            f"[{self.source}; {self.finding.describe()}]"
        )


@dataclass
class BottleneckModel:
    """A domain-specific bottleneck model pluggable into the DSE.

    Attributes:
        name: Model label (e.g. ``"dnn-accelerator-latency"``).
        build_tree: Callable producing the populated tree for the current
            solution; its single argument is a model-specific context
            object (for the DNN latency model, a per-layer execution
            record).
        affected_parameters: Factor (node) name -> design parameter names
            that mitigate it.
        mitigations: Parameter name -> mitigation subroutine.
    """

    name: str
    build_tree: Callable[[Any], Node]
    affected_parameters: Dict[str, Tuple[str, ...]]
    mitigations: Dict[str, MitigationFn] = field(default_factory=dict)

    def predict(
        self,
        context: Any,
        current_values: Mapping[str, Any],
        target_value: Optional[float] = None,
        max_findings: int = 3,
        execution: Optional[object] = None,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> List[ParameterPrediction]:
        """Analyze one solution and predict mitigating parameter values.

        Args:
            context: Input to ``build_tree``.
            current_values: Current design-point values, keyed by parameter.
            target_value: Optional constraint threshold (see analyzer).
            max_findings: How many ranked bottleneck factors (with known
                affected parameters) to turn into predictions.
            execution: Execution characteristics forwarded to mitigations.
            extra: Extra context forwarded to mitigations.

        Returns:
            Parameter predictions, most critical bottleneck first.  A
            parameter appears at most once (from its highest-ranked factor).
        """
        tree = self.build_tree(context)
        findings = analyze_tree(tree, target_value=target_value)
        predictions: List[ParameterPrediction] = []
        seen_params: set = set()
        used_findings = 0
        for finding in findings:
            params = self.affected_parameters.get(finding.name)
            if not params:
                continue
            used_findings += 1
            if used_findings > max_findings:
                break
            mit_context = MitigationContext(
                scaling=finding.scaling,
                finding=finding,
                execution=execution,
                extra=dict(extra or {}),
            )
            for param in params:
                if param in seen_params or param not in current_values:
                    continue
                handle = self.mitigations.get(param)
                if handle is None:
                    continue  # DSE applies its neighbour fallback itself.
                value = handle(current_values[param], mit_context)
                if value is None:
                    continue
                seen_params.add(param)
                predictions.append(
                    ParameterPrediction(
                        parameter=param,
                        value=float(value),
                        finding=finding,
                        source="mitigation",
                    )
                )
        return predictions
