"""Bottleneck analyzer: contributions, dominating factors, and scalings.

Implements §4.3(a) of the paper: populate the bottleneck tree, compute each
factor's contribution to the total cost, identify the primary (and
secondary) bottleneck factors, and derive the *scaling* ``s`` — the ratio
by which a bottleneck factor's cost must shrink to re-balance the tree
(e.g. Fig. 8's DMA time dominating at 100% while on-chip communication sits
at 25.9% yields ``s = 100 / 25.9 = 3.85``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.bottleneck import compile as _compile
from repro.core.bottleneck.tree import Node, NodeOp

__all__ = ["BottleneckFinding", "analyze_tree", "DEFAULT_SCALING"]

#: Scaling used when a bottleneck has no competing factor to balance
#: against (single-child max, zero siblings): aim to halve the cost.
DEFAULT_SCALING = 2.0

#: Cap on the scaling ratio; unbounded ratios (sibling factor ~0) would
#: otherwise demand absurd parameter jumps.
MAX_SCALING = 64.0


@dataclass(frozen=True)
class BottleneckFinding:
    """One factor identified as a (candidate) bottleneck.

    Attributes:
        node: The tree node of the factor.
        path: Node names from the root to this factor.
        contribution: Fraction of the total cost attributed to the factor.
        scaling: Ratio ``s`` by which the factor's cost should be reduced
            (increased, for ``inverse`` factors) to mitigate the bottleneck.
        inverse: True when the factor sits in a denominator — *raising* it
            lowers the cost (e.g. bandwidth under DMA time).
    """

    node: Node
    path: Tuple[str, ...]
    contribution: float
    scaling: float
    inverse: bool = False

    @property
    def name(self) -> str:
        return self.node.name

    def describe(self) -> str:
        direction = "increase" if self.inverse else "reduce"
        return (
            f"{' > '.join(self.path)}: contributes "
            f"{self.contribution * 100:.1f}% of the cost; "
            f"{direction} by ~{self.scaling:.2f}x to balance"
        )


def _clamp_scaling(s: float) -> float:
    if not math.isfinite(s) or s <= 1.0:
        return DEFAULT_SCALING
    return min(s, MAX_SCALING)


def analyze_tree(
    root: Node,
    target_value: Optional[float] = None,
    min_contribution: float = 0.01,
) -> List[BottleneckFinding]:
    """Analyze a populated bottleneck tree.

    Args:
        root: The populated tree; ``root.value`` is the total cost.
        target_value: When the cost is a violated inequality constraint,
            the threshold to reach; the root scaling becomes
            ``value / target`` instead of being derived from sibling
            balance.
        min_contribution: Findings below this contribution are dropped.

    Returns:
        Findings for every node on or near the dominating paths, ranked by
        decreasing contribution (ties: deeper nodes first, as they are more
        specific).  The caller cross-references finding names against the
        bottleneck model's affected-parameter dictionary.
    """
    # With REPRO_TREE_COMPILE on, one compiled pass yields every subtree
    # value; the contribution walk below reads child values at every
    # level, so this turns O(nodes x depth) evaluations into O(nodes).
    # Values are bit-identical to the recursive walk either way.
    values_by_id = _compile.evaluate_all(root) if _compile.enabled() else None

    def _value(node: Node) -> float:
        if values_by_id is not None:
            return values_by_id[id(node)]
        return node.value

    total = _value(root)
    if total <= 0 or not math.isfinite(total):
        return []

    findings: List[BottleneckFinding] = []

    def visit(
        node: Node,
        path: Tuple[str, ...],
        contribution: float,
        scaling: float,
        inverse: bool,
    ) -> None:
        if contribution < min_contribution:
            return
        findings.append(
            BottleneckFinding(
                node=node,
                path=path,
                contribution=contribution,
                scaling=_clamp_scaling(scaling),
                inverse=inverse,
            )
        )
        if node.op is NodeOp.LEAF:
            return
        values = [_value(child) for child in node.children]
        if node.op is NodeOp.MAX:
            # Contribution concentrates on the arg-max child; its scaling
            # balances it against the runner-up factor.  Children tied
            # with the maximum (within 1%) are co-bottlenecks — all of
            # them must shrink for the max to move — so each is visited.
            peak = max(values)
            tied = [i for i, v in enumerate(values) if v >= 0.99 * peak]
            below = [v for v in values if v < 0.99 * peak]
            runner_up = max(below) if below else 0.0
            if len(tied) > 1:
                child_scaling = max(DEFAULT_SCALING, scaling)
            elif runner_up > 0:
                child_scaling = max(peak / runner_up, scaling)
            else:
                child_scaling = max(DEFAULT_SCALING, scaling)
            for i in tied:
                visit(
                    node.children[i],
                    path + (node.children[i].name,),
                    contribution,
                    child_scaling,
                    inverse,
                )
        elif node.op is NodeOp.ADD:
            total_here = sum(values)
            if total_here <= 0:
                return
            # Reducing the parent by `scaling` means removing an excess of
            # value * (1 - 1/s); the child absorbing it must shrink to
            # child - excess.
            excess = total_here * (1.0 - 1.0 / scaling)
            for child, v in zip(node.children, values):
                if v <= 0:
                    continue
                remainder = v - excess
                child_scaling = v / remainder if remainder > 0 else MAX_SCALING
                visit(
                    child,
                    path + (child.name,),
                    contribution * (v / total_here),
                    child_scaling,
                    inverse,
                )
        elif node.op is NodeOp.MUL:
            # Scaling any factor scales the product; all children inherit.
            for child in node.children:
                visit(
                    child,
                    path + (child.name,),
                    contribution,
                    scaling,
                    inverse,
                )
        elif node.op is NodeOp.DIV:
            numerator, denominator = node.children
            visit(
                numerator,
                path + (numerator.name,),
                contribution,
                scaling,
                inverse,
            )
            visit(
                denominator,
                path + (denominator.name,),
                contribution,
                scaling,
                not inverse,
            )

    root_scaling = (
        total / target_value
        if target_value and target_value > 0
        else DEFAULT_SCALING
    )
    visit(root, (root.name,), 1.0, _clamp_scaling(root_scaling), False)

    # Rank: highest contribution first; shallower first on ties (a max
    # node's co-bottleneck children all inherit the parent contribution —
    # the aggregate factors should be consulted before their per-operand
    # refinements so distinct factors each get a turn); drop the root
    # itself (it names the total, never a mitigable factor).
    ranked = [f for f in findings if len(f.path) > 1]
    ranked.sort(key=lambda f: (-f.contribution, len(f.path)))
    return ranked
