"""DNN-accelerator latency bottleneck model (paper Fig. 8 and §4.7).

The tree expresses per-layer latency as the maximum of three overlapped
factors — computation, on-chip NoC communication (a max over the four
dedicated operand NoCs), and off-chip DMA time (additive over serialized
operand transfers).  Mitigation subroutines implement the §4.7 update
rules: PE scaling, off-chip-bandwidth re-dimensioning, NoC width/link
scaling clamped to one-shot-broadcast feasibility, and register-file /
scratchpad sizing driven by remaining reuse (Amdahl-corrected for the
scratchpad, where operands share the DMA serially).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.accelerator import AcceleratorConfig
from repro.core.bottleneck.api import (
    BottleneckModel,
    MitigationContext,
)
from repro.core.bottleneck.tree import Node, add, leaf, maximum
from repro.cost.execution_info import ExecutionInfo
from repro.workloads.layers import OPERANDS, LayerShape, Operand

__all__ = [
    "LayerExecutionContext",
    "build_latency_tree",
    "build_latency_bottleneck_model",
]


@dataclass(frozen=True)
class LayerExecutionContext:
    """Input to the latency bottleneck model: one layer's optimized run."""

    layer: LayerShape
    execution: ExecutionInfo
    config: AcceleratorConfig


def build_latency_tree(context: LayerExecutionContext) -> Node:
    """Populate the Fig. 8 latency tree from execution characteristics."""
    execution = context.execution
    noc_children = [
        leaf(
            f"t_noc_{op.value}",
            execution.t_noc.get(op, 0.0),
            operand=op,
        )
        for op in OPERANDS
    ]
    total_offchip = max(execution.total_offchip_bytes, 1e-12)
    bytes_per_cycle = context.config.dram_bytes_per_cycle
    dma_children = [
        leaf(
            f"dma_{op.value}",
            execution.data_offchip.get(op, 0.0) / bytes_per_cycle,
            operand=op,
            footprint_fraction=execution.data_offchip.get(op, 0.0)
            / total_offchip,
        )
        for op in OPERANDS
    ]
    return maximum(
        "latency",
        [
            leaf("t_comp", execution.t_comp),
            maximum("t_noc", noc_children),
            add("t_dma", dma_children),
        ],
    )


# -- helpers ----------------------------------------------------------------------


def _operand_of(ctx: MitigationContext, fallback_from_noc: bool) -> Operand:
    """Operand of the bottleneck factor (node metadata, else worst factor)."""
    op = ctx.finding.node.metadata.get("operand")
    if isinstance(op, Operand):
        return op
    execution: ExecutionInfo = ctx.execution
    if fallback_from_noc:
        return max(execution.t_noc, key=execution.t_noc.get)
    return max(execution.data_offchip, key=execution.data_offchip.get)


def _config(ctx: MitigationContext) -> AcceleratorConfig:
    return ctx.extra["config"]


# -- mitigation subroutines (paper §4.7) ------------------------------------------


def mitigate_pes(current: float, ctx: MitigationContext) -> float:
    """``PEs_new = s * PEs_current``."""
    return current * ctx.scaling


def mitigate_offchip_bw(current: float, ctx: MitigationContext) -> float:
    """Re-dimension bandwidth so the whole footprint moves in t_dma / s."""
    execution: ExecutionInfo = ctx.execution
    if execution.t_dma <= 0:
        return current
    scaled_t_dma = execution.t_dma / ctx.scaling
    footprint = execution.total_offchip_bytes
    bytes_per_cycle = footprint / scaled_t_dma
    return bytes_per_cycle * _config(ctx).freq_mhz


def mitigate_noc_width(current: float, ctx: MitigationContext) -> float:
    """Scale NoC datawidth, clamped to a one-shot broadcast of the tile."""
    execution: ExecutionInfo = ctx.execution
    op = _operand_of(ctx, fallback_from_noc=True)
    max_width_feasible = execution.noc_bytes_per_group.get(op, 0.0) * 8
    width_scaled = current * ctx.scaling
    if max_width_feasible <= 0:
        return width_scaled
    return min(width_scaled, max_width_feasible)


def _array_underutilized(ctx: MitigationContext) -> bool:
    """True when the mapper could not occupy the PE array (typically
    because NoC unicast capability caps the spatial unrolling)."""
    execution: ExecutionInfo = ctx.execution
    return execution.pes_used < 0.9 * _config(ctx).pes


def mitigate_phys_unicast(current: float, ctx: MitigationContext) -> float:
    """Scale physical unicast links toward the demanded concurrent groups.

    The Table 1 parameter is the multiplier ``i`` with
    ``links = pes * i / 64``; the subroutine converts the link-domain
    prediction back to the multiplier domain.

    Fired from a compute-time bottleneck (underutilized array), the links
    are the unrolling limiter, so the multiplier itself scales by ``s``.
    """
    execution: ExecutionInfo = ctx.execution
    config = _config(ctx)
    if ctx.finding.name == "t_comp":
        if not _array_underutilized(ctx):
            return None
        return min(current * ctx.scaling, 64.0)
    op = _operand_of(ctx, fallback_from_noc=True)
    links_current = config.physical_links(op)
    max_links_feasible = max(execution.noc_groups_needed.get(op, 1), 1)
    links_new = min(links_current * ctx.scaling, max_links_feasible)
    return links_new * 64.0 / config.pes


def mitigate_virt_unicast(current: float, ctx: MitigationContext) -> float:
    """Provide enough time-shared rounds to serve the demanded groups.

    Fired from a compute-time bottleneck (underutilized array), the
    time-sharing degree is the unrolling limiter and scales by ``s``.
    """
    execution: ExecutionInfo = ctx.execution
    config = _config(ctx)
    if ctx.finding.name == "t_comp":
        if not _array_underutilized(ctx):
            return None
        return current * ctx.scaling
    op = _operand_of(ctx, fallback_from_noc=True)
    groups = max(execution.noc_groups_needed.get(op, 1), 1)
    links = config.physical_links(op)
    return float(math.ceil(groups / links))


def _reuse_driven_size(
    per_operand_bytes, reuse_available, target_scaling: float
) -> float:
    """Shared RF/SPM sizing rule: grow each operand's chunk by the portion
    of the target scaling its remaining reuse cannot already provide."""
    total = 0.0
    for op in (Operand.I, Operand.W, Operand.O):
        available = max(reuse_available.get(op, 1.0), 1.0)
        growth = target_scaling / min(available, target_scaling)
        total += per_operand_bytes.get(op, 0.0) * growth
    return total


def mitigate_rf_size(current: float, ctx: MitigationContext) -> float:
    """Grow the register file to exploit the bottleneck operand's reuse."""
    execution: ExecutionInfo = ctx.execution
    op = _operand_of(ctx, fallback_from_noc=True)
    target = min(
        max(execution.reuse_available_rf.get(op, 1.0), 1.0), ctx.scaling
    )
    if target <= 1.0:
        return current
    return _reuse_driven_size(
        execution.data_rf, execution.reuse_available_rf, target
    )


def mitigate_spm_size(current: float, ctx: MitigationContext) -> float:
    """Grow the scratchpad; Amdahl-corrected for serialized DMA operands.

    With the bottleneck operand contributing fraction ``f`` of the off-chip
    footprint, exploiting ``s``-fold reuse of it speeds DMA by
    ``A = 1 / ((1 - f) + f / s)``.
    """
    execution: ExecutionInfo = ctx.execution
    op = _operand_of(ctx, fallback_from_noc=False)
    total = execution.total_offchip_bytes
    if total <= 0:
        return current
    f = execution.data_offchip.get(op, 0.0) / total
    s = ctx.scaling
    amdahl = 1.0 / ((1.0 - f) + f / s) if f > 0 else 1.0
    target = min(
        max(execution.reuse_available_spm.get(op, 1.0), 1.0), amdahl
    )
    if target <= 1.0:
        return current
    new_bytes = _reuse_driven_size(
        execution.data_spm, execution.reuse_available_spm, target
    )
    # Double buffering and the kB parameter domain.
    return 2.0 * new_bytes / 1024.0


def build_latency_bottleneck_model() -> BottleneckModel:
    """The full latency bottleneck model for DNN accelerators.

    Factor -> parameter associations (the Fig. 7b dictionary):

    * computation time      -> PE count;
    * per-operand NoC time  -> NoC datawidth, that operand's physical and
      virtual unicast links, and the register-file size (more RF reuse
      means fewer distribution events);
    * per-operand DMA time  -> scratchpad size (more reuse) and off-chip
      bandwidth;
    * total DMA time        -> off-chip bandwidth.
    """
    affected = {
        # Compute time: the array itself, or — when the array cannot be
        # occupied — the unicast capability capping the spatial unrolling.
        "t_comp": ("pes",)
        + tuple(f"virt_unicast_{op.value}" for op in OPERANDS)
        + tuple(f"phys_unicast_{op.value}" for op in OPERANDS),
        "t_dma": ("offchip_bw_mbps",),
    }
    for op in OPERANDS:
        affected[f"t_noc_{op.value}"] = (
            "noc_datawidth",
            f"phys_unicast_{op.value}",
            f"virt_unicast_{op.value}",
            "l1_bytes",
        )
        affected[f"dma_{op.value}"] = ("l2_kb", "offchip_bw_mbps")

    mitigations = {
        "pes": mitigate_pes,
        "offchip_bw_mbps": mitigate_offchip_bw,
        "noc_datawidth": mitigate_noc_width,
        "l1_bytes": mitigate_rf_size,
        "l2_kb": mitigate_spm_size,
    }
    for op in OPERANDS:
        mitigations[f"phys_unicast_{op.value}"] = mitigate_phys_unicast
        mitigations[f"virt_unicast_{op.value}"] = mitigate_virt_unicast

    return BottleneckModel(
        name="dnn-accelerator-latency",
        build_tree=build_latency_tree,
        affected_parameters=affected,
        mitigations=mitigations,
    )
