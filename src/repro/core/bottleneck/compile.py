"""Postfix-compiled evaluation of bottleneck trees.

The recursive ``Node.value`` walk re-enters the interpreter once per
node *per evaluation*, and the analyzer's contribution pass reads every
child's value at every level — O(nodes x depth) recursive evaluations
per analyzed tree, repeated for every feasible layer of every DSE
attempt.  This module compiles a tree's *structure* (the combinator
kinds and arities, independent of leaf values) into a flat postfix
program — parallel op/arity tuples in post-order — that an explicit
value stack executes without Python recursion:

* :func:`evaluate_node` — the compiled twin of ``Node.value`` (one
  linear pass over the subtree);
* :func:`evaluate_all` — every node's value in a single pass, keyed by
  node identity (what the analyzer consumes: O(nodes) instead of
  O(nodes x depth)).

Exactness contract (asserted by ``tests/test_tree_compile.py``): the
compiled evaluation replicates the recursive walk's *operation order* —
``sum()`` over children for ADD (including its integer-zero start),
left-to-right running product from ``1.0`` for MUL, first-maximal
``max()`` for MAX, and the division-by-zero -> ``inf`` rule for DIV —
so results are bitwise identical, NaN propagation included.

Programs are memoized by structure (trees are rebuilt per layer per DSE
attempt, but their shapes repeat campaign-wide — the same hazard
``padded_bounds`` memoization addressed for layer bounds); hit/miss
counters surface in ``CostEvaluator.perf_summary()`` under
``tree_compile``.  The knob is ``REPRO_TREE_COMPILE`` (default on;
``0`` selects the recursive reference walk — the verify differential
runs its reference campaigns that way).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from repro.perf.knobs import tree_compile_enabled

__all__ = [
    "CompiledTreeProgram",
    "TreeCompileStats",
    "enabled",
    "compile_tree",
    "evaluate_node",
    "evaluate_all",
    "stats",
    "reset_stats",
]

#: Opcodes of the flat program (indexable without enum dispatch).
OP_LEAF = 0
OP_MAX = 1
OP_ADD = 2
OP_MUL = 3
OP_DIV = 4

_OPCODE_BY_NAME = {
    "leaf": OP_LEAF,
    "max": OP_MAX,
    "add": OP_ADD,
    "mul": OP_MUL,
    "div": OP_DIV,
}

#: Structure-memo safety valve: tree shapes in a campaign number in the
#: dozens; wholesale reset at this bound prevents pathological callers
#: (e.g. fuzzers generating unbounded random shapes) from leaking.
_MEMO_LIMIT = 4096


class TreeCompileStats:
    """Process-wide counters of the structure memo and evaluations.

    Plain attributes only (mirrors
    :class:`repro.perf.instrumentation.BatchEvalStats`).  These counters
    are *volatile* for journaling purposes — the memo is process-global,
    so successive campaigns in one process observe different hit counts;
    ``repro.telemetry.events`` excludes them from ``RunSummary``.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.compiled = 0
        self.evaluations = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "compiled": self.compiled,
            "evaluations": self.evaluations,
        }

    def reset(self) -> None:
        self.__init__()


class CompiledTreeProgram:
    """One tree structure as parallel postfix op/arity tuples.

    ``ops[i]``/``arities[i]`` describe the i-th node of the post-order
    walk; executing positions left to right over a value stack yields
    every subtree value with the final entry being the root's.
    """

    __slots__ = ("ops", "arities", "structure")

    def __init__(
        self,
        ops: Tuple[int, ...],
        arities: Tuple[int, ...],
        structure: Tuple[int, ...],
    ):
        self.ops = ops
        self.arities = arities
        self.structure = structure

    def __len__(self) -> int:
        return len(self.ops)


_STATS = TreeCompileStats()
_MEMO: Dict[Tuple[int, ...], CompiledTreeProgram] = {}
_MEMO_LOCK = threading.Lock()


def enabled() -> bool:
    """Whether compiled evaluation is selected (``REPRO_TREE_COMPILE``)."""
    return tree_compile_enabled()


def stats() -> TreeCompileStats:
    """The process-wide compile/evaluation counters."""
    return _STATS


def reset_stats() -> None:
    """Zero the counters (the program memo is retained)."""
    _STATS.reset()


def clear_memo() -> None:
    """Drop every memoized program (tests; the memo refills on demand)."""
    with _MEMO_LOCK:
        _MEMO.clear()


def _postorder(root) -> List[object]:
    """Iterative post-order node list (children before parents,
    left-to-right) — no Python recursion, by design."""
    preorder_reversed: List[object] = []
    stack = [root]
    while stack:
        node = stack.pop()
        preorder_reversed.append(node)
        stack.extend(node.children)
    preorder_reversed.reverse()
    return preorder_reversed


def compile_tree(root) -> Tuple[CompiledTreeProgram, List[object]]:
    """Compile (or fetch the memoized program for) ``root``'s structure.

    Returns ``(program, postorder_nodes)``; the program aligns
    position-for-position with the post-order walk of *any* tree sharing
    the structure, so memoized programs are reusable across the
    per-attempt tree rebuilds.
    """
    nodes = _postorder(root)
    structure: List[int] = []
    for node in nodes:
        structure.append(_OPCODE_BY_NAME[node.op.value])
        structure.append(len(node.children))
    key = tuple(structure)
    program = _MEMO.get(key)
    if program is not None:
        _STATS.hits += 1
        return program, nodes
    _STATS.misses += 1
    ops = key[0::2]
    arities = key[1::2]
    program = CompiledTreeProgram(ops, arities, key)
    with _MEMO_LOCK:
        if len(_MEMO) >= _MEMO_LIMIT:
            _MEMO.clear()
        _MEMO[key] = program
        _STATS.compiled = len(_MEMO) if _STATS.compiled < len(_MEMO) else (
            _STATS.compiled + 1
        )
    return program, nodes


def _execute(program: CompiledTreeProgram, nodes: List[object]) -> List[float]:
    """Run the flat program over ``nodes``'s leaf values; returns the
    value at every post-order position (the root is last)."""
    values: List[float] = []
    stack: List[float] = []
    append = stack.append
    for position, opcode in enumerate(program.ops):
        if opcode == OP_LEAF:
            value = float(nodes[position].raw_value)
        else:
            arity = program.arities[position]
            args = stack[-arity:]
            del stack[-arity:]
            if opcode == OP_MAX:
                value = max(args)
            elif opcode == OP_ADD:
                value = sum(args)
            elif opcode == OP_MUL:
                value = 1.0
                for arg in args:
                    value *= arg
            else:  # OP_DIV
                numerator, denominator = args
                value = (
                    float("inf") if denominator == 0
                    else numerator / denominator
                )
        append(value)
        values.append(value)
    return values


def evaluate_node(root) -> float:
    """Compiled twin of the recursive ``Node.value`` walk."""
    program, nodes = compile_tree(root)
    _STATS.evaluations += 1
    return _execute(program, nodes)[-1]


def evaluate_all(root) -> Dict[int, float]:
    """Every subtree value of ``root`` in one pass, keyed by ``id(node)``.

    The analyzer's contribution pass reads child values at every level;
    this gives it the whole tree's values for the cost of a single
    evaluation.  Keys are identities, so the map is only valid while the
    tree object is alive (the analyzer's scope).
    """
    program, nodes = compile_tree(root)
    _STATS.evaluations += 1
    values = _execute(program, nodes)
    return {id(node): value for node, value in zip(nodes, values)}
