"""Energy bottleneck model for DNN accelerators (objective extension).

The paper's framework optimizes a single objective but is explicitly
designed for other costs than latency (§4.2); this model instantiates the
API for energy: per-layer energy is additive over the MAC datapath,
register files, NoC transfers, scratchpad accesses, and off-chip traffic
(per operand).  Mitigations grow the register file / scratchpad to convert
remaining reuse into less data movement — the same §4.7 sizing subroutines
the latency model uses, driven by the energy tree's scalings.
"""

from __future__ import annotations

from repro.core.bottleneck.api import BottleneckModel
from repro.core.bottleneck.latency_model import (
    LayerExecutionContext,
    mitigate_rf_size,
    mitigate_spm_size,
)
from repro.core.bottleneck.tree import Node, add, leaf
from repro.cost.energy import RF_ACCESSES_PER_MAC
from repro.cost.technology import TECH_45NM
from repro.workloads.layers import OPERANDS

__all__ = ["build_energy_tree", "build_energy_bottleneck_model"]


def build_energy_tree(context: LayerExecutionContext) -> Node:
    """Per-layer energy (pJ) as an additive component tree."""
    execution = context.execution
    config = context.config
    tech = TECH_45NM

    mac_pj = execution.macs * tech.mac_energy_pj
    rf_pj = (
        execution.macs
        * RF_ACCESSES_PER_MAC
        * config.bytes_per_element
        * tech.rf_energy_per_byte(config.l1_bytes)
    )
    spm_per_byte = tech.spm_energy_per_byte(config.l2_bytes)

    noc_children = [
        leaf(
            f"e_noc_{op.value}",
            execution.data_noc.get(op, 0.0) * tech.noc_energy_pj,
            operand=op,
        )
        for op in OPERANDS
    ]
    dram_children = [
        leaf(
            f"e_dram_{op.value}",
            execution.data_offchip.get(op, 0.0) * tech.dram_energy_pj,
            operand=op,
        )
        for op in OPERANDS
    ]
    spm_pj = (
        sum(execution.data_noc.values()) + sum(execution.data_offchip.values())
    ) * spm_per_byte

    return add(
        "energy",
        [
            leaf("e_mac", mac_pj),
            leaf("e_rf", rf_pj),
            add("e_noc", noc_children),
            leaf("e_spm", spm_pj),
            add("e_dram", dram_children),
        ],
    )


def build_energy_bottleneck_model() -> BottleneckModel:
    """Energy bottleneck model: data-movement factors map to buffer sizing.

    The MAC and RF terms are workload-intrinsic (no hardware parameter
    reduces them without changing precision), so only the movement factors
    carry affected parameters.
    """
    affected = {}
    for op in OPERANDS:
        affected[f"e_noc_{op.value}"] = ("l1_bytes",)
        affected[f"e_dram_{op.value}"] = ("l2_kb",)
    return BottleneckModel(
        name="dnn-accelerator-energy",
        build_tree=build_energy_tree,
        affected_parameters=affected,
        mitigations={
            "l1_bytes": mitigate_rf_size,
            "l2_kb": mitigate_spm_size,
        },
    )
