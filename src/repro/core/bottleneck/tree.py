"""Bottleneck-model trees (paper Fig. 2 / Fig. 7a / Fig. 8).

A bottleneck model is a tree whose nodes are mathematical combinators —
``max``, ``add``, ``mul``, ``div`` — over cost factors, with leaves holding
populated values of design parameters or execution characteristics.  Unlike
a cost model that returns one number, the tree is *explicitly analyzable*:
contributions can be computed per node, the dominating path traced, and the
scaling required to re-balance the cost derived.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.core.bottleneck import compile as _compile

__all__ = ["NodeOp", "Node", "leaf", "add", "mul", "div", "maximum"]


class NodeOp(enum.Enum):
    """Combinator of a bottleneck-tree node."""

    LEAF = "leaf"
    MAX = "max"
    ADD = "add"
    MUL = "mul"
    DIV = "div"


@dataclass(frozen=True)
class Node:
    """One node of a bottleneck model.

    Attributes:
        name: Unique-ish label; the affected-parameters dictionary of the
            bottleneck API keys on these names.
        op: Combinator applied to the children's values.
        children: Sub-factors (empty for leaves).
        raw_value: Populated value for leaves; ignored for internal nodes.
        metadata: Free-form annotations (e.g. the operand a factor belongs
            to) surfaced to mitigation subroutines and explanations.
    """

    name: str
    op: NodeOp
    children: Tuple["Node", ...] = ()
    raw_value: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.op is NodeOp.LEAF:
            if self.children:
                raise ValueError(f"leaf node {self.name!r} cannot have children")
            if self.raw_value is None:
                raise ValueError(f"leaf node {self.name!r} needs a value")
        else:
            if not self.children:
                raise ValueError(f"{self.op} node {self.name!r} needs children")
            if self.op is NodeOp.DIV and len(self.children) != 2:
                raise ValueError(
                    f"div node {self.name!r} needs exactly 2 children"
                )

    # -- evaluation ------------------------------------------------------------

    @property
    def value(self) -> float:
        """Evaluate the subtree (leaves must be populated).

        With ``REPRO_TREE_COMPILE`` on (the default) the subtree runs
        through the memoized flat postfix program of
        :mod:`repro.core.bottleneck.compile` — bit-identical to the
        recursive reference walk below, without Python recursion.
        """
        if self.op is NodeOp.LEAF:
            return float(self.raw_value)
        if _compile.enabled():
            return _compile.evaluate_node(self)
        child_values = [c.value for c in self.children]
        if self.op is NodeOp.MAX:
            return max(child_values)
        if self.op is NodeOp.ADD:
            return sum(child_values)
        if self.op is NodeOp.MUL:
            out = 1.0
            for v in child_values:
                out *= v
            return out
        # DIV
        numerator, denominator = child_values
        if denominator == 0:
            return float("inf")
        return numerator / denominator

    # -- traversal ----------------------------------------------------------------

    def walk(self) -> Iterator["Node"]:
        """Depth-first pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Node"]:
        """First node with the given name, or None."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def render(self, indent: int = 0) -> str:
        """Human-readable tree rendering with values and percentages."""
        total = self.value
        lines = []

        def _render(node: Node, depth: int) -> None:
            share = (node.value / total * 100.0) if total else 0.0
            lines.append(
                f"{'  ' * depth}{node.name} [{node.op.value}] "
                f"= {node.value:.4g} ({share:.1f}%)"
            )
            for child in node.children:
                _render(child, depth + 1)

        _render(self, indent)
        return "\n".join(lines)


# -- construction helpers --------------------------------------------------------


def leaf(name: str, value: float, **metadata: object) -> Node:
    """A populated leaf (design parameter or execution characteristic)."""
    return Node(name=name, op=NodeOp.LEAF, raw_value=float(value), metadata=metadata)


def add(name: str, children: Sequence[Node], **metadata: object) -> Node:
    """An additive cost factor (e.g. DMA time over serialized operands)."""
    return Node(name=name, op=NodeOp.ADD, children=tuple(children), metadata=metadata)


def mul(name: str, children: Sequence[Node], **metadata: object) -> Node:
    """A multiplicative cost factor."""
    return Node(name=name, op=NodeOp.MUL, children=tuple(children), metadata=metadata)


def div(name: str, numerator: Node, denominator: Node, **metadata: object) -> Node:
    """A ratio factor (work / capability)."""
    return Node(
        name=name,
        op=NodeOp.DIV,
        children=(numerator, denominator),
        metadata=metadata,
    )


def maximum(name: str, children: Sequence[Node], **metadata: object) -> Node:
    """An overlap factor: the slowest of concurrent activities dominates."""
    return Node(name=name, op=NodeOp.MAX, children=tuple(children), metadata=metadata)
