"""Bottleneck models for resource constraints: area and max power.

When the current solution violates an inequality constraint, the critical
cost switches from the objective to the violated constraint (paper §4.1,
§4.6 and footnote 4: "DSE could intelligently let communication time
increase but meet constraints first through reduced buffer/NoC sizes").
These models express which components consume the constrained resource and
provide *down*-scaling mitigations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import AcceleratorConfig
from repro.core.bottleneck.api import BottleneckModel, MitigationContext
from repro.core.bottleneck.tree import Node, add, leaf
from repro.cost.area import AreaBreakdown
from repro.cost.power import PowerBreakdown
from repro.workloads.layers import OPERANDS

__all__ = [
    "ResourceContext",
    "build_area_tree",
    "build_power_tree",
    "build_area_bottleneck_model",
    "build_power_bottleneck_model",
]

_PHYS_PARAMS = tuple(f"phys_unicast_{op.value}" for op in OPERANDS)
_VIRT_PARAMS = tuple(f"virt_unicast_{op.value}" for op in OPERANDS)


@dataclass(frozen=True)
class ResourceContext:
    """Input to the resource bottleneck models."""

    config: AcceleratorConfig
    area: AreaBreakdown
    power: PowerBreakdown


def build_area_tree(context: ResourceContext) -> Node:
    """Area = PE array + scratchpad + NoCs + controller (additive)."""
    area = context.area
    return add(
        "area",
        [
            leaf("area_pe_array", area.pe_array_mm2),
            leaf("area_spm", area.spm_mm2),
            leaf("area_noc", area.noc_mm2),
            leaf("area_controller", area.controller_mm2),
        ],
    )


def build_power_tree(context: ResourceContext) -> Node:
    """Peak power = PEs + NoCs + scratchpad + off-chip interface."""
    power = context.power
    return add(
        "power",
        [
            leaf("power_pe", power.pe_w),
            leaf("power_noc", power.noc_w),
            leaf("power_spm", power.spm_w),
            leaf("power_offchip", power.offchip_w),
        ],
    )


def _downscale(current: float, ctx: MitigationContext) -> float:
    """Shrink a parameter by the required scaling (constraint mitigation)."""
    return current / ctx.scaling


def build_area_bottleneck_model() -> BottleneckModel:
    """Area-constraint bottleneck model with down-scaling mitigations."""
    affected = {
        "area_pe_array": ("pes", "l1_bytes"),
        "area_spm": ("l2_kb",),
        "area_noc": ("noc_datawidth",) + _PHYS_PARAMS,
    }
    params = {"pes", "l1_bytes", "l2_kb", "noc_datawidth", *_PHYS_PARAMS}
    return BottleneckModel(
        name="dnn-accelerator-area",
        build_tree=build_area_tree,
        affected_parameters=affected,
        mitigations={p: _downscale for p in params},
    )


def build_power_bottleneck_model() -> BottleneckModel:
    """Power-constraint bottleneck model with down-scaling mitigations."""
    affected = {
        "power_pe": ("pes", "l1_bytes"),
        "power_noc": ("noc_datawidth",) + _PHYS_PARAMS,
        "power_spm": ("noc_datawidth", "l2_kb"),
        "power_offchip": ("offchip_bw_mbps",),
    }
    params = {
        "pes",
        "l1_bytes",
        "l2_kb",
        "noc_datawidth",
        "offchip_bw_mbps",
        *_PHYS_PARAMS,
    }
    return BottleneckModel(
        name="dnn-accelerator-power",
        build_tree=build_power_tree,
        affected_parameters=affected,
        mitigations={p: _downscale for p in params},
    )
