"""Core contribution: bottleneck models and the Explainable-DSE framework."""

from repro.core.bottleneck import (
    BottleneckFinding,
    BottleneckModel,
    analyze_tree,
    build_latency_bottleneck_model,
)
from repro.core.dse import Constraint, DSEResult, ExplainableDSE, Sense

__all__ = [
    "BottleneckFinding",
    "BottleneckModel",
    "Constraint",
    "DSEResult",
    "ExplainableDSE",
    "Sense",
    "analyze_tree",
    "build_latency_bottleneck_model",
]
