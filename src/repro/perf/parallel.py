"""Executor abstraction: opt-in parallelism with a bit-identical serial path.

The mapping-space walk is embarrassingly parallel across layers,
candidates, and (technique x model) harness runs.  This module provides
the one knob that controls all of them:

* ``REPRO_JOBS`` — worker count.  Unset or ``1`` selects the serial
  path, which executes exactly the same code as before this layer
  existed (bit-identical results, no pools, no pickling).  ``0`` or
  ``auto`` selects ``os.cpu_count()``.
* ``REPRO_EXECUTOR`` — ``process`` (default; real speedup for the
  pure-Python cost model) or ``thread`` (cheaper startup, useful when
  the work releases the GIL or for testing).

Work is always dispatched and collected in input order, so parallel
results are deterministic regardless of completion order.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["resolve_jobs", "resolve_executor_mode", "parallel_map", "WorkerPool"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[object] = None) -> int:
    """Resolve a worker count from an explicit value or ``REPRO_JOBS``."""
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "1")
    if isinstance(jobs, str):
        if jobs.strip().lower() in ("auto", "0"):
            return os.cpu_count() or 1
        try:
            jobs = int(jobs)
        except ValueError:
            return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


def resolve_executor_mode(mode: Optional[str] = None) -> str:
    """Resolve the executor kind (``process`` / ``thread``)."""
    mode = mode or os.environ.get("REPRO_EXECUTOR", "process")
    mode = mode.strip().lower()
    if mode not in ("process", "thread"):
        raise ValueError(f"unknown executor mode {mode!r}")
    return mode


class WorkerPool:
    """Lazily created, reusable executor with a serial fallback.

    With ``jobs <= 1`` no executor is ever created and :meth:`map` is a
    plain list comprehension — the exact pre-existing serial semantics.
    """

    def __init__(
        self, jobs: Optional[object] = None, mode: Optional[str] = None
    ):
        self.jobs = resolve_jobs(jobs)
        self.mode = resolve_executor_mode(mode)
        self._executor: Optional[Executor] = None

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.mode == "process":
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
            else:
                self._executor = ThreadPoolExecutor(max_workers=self.jobs)
        return self._executor

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Order-preserving map (serial when ``jobs <= 1``)."""
        items = list(items)
        if not self.parallel or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_executor().map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[object] = None,
    mode: Optional[str] = None,
) -> List[R]:
    """One-shot order-preserving map over a temporary :class:`WorkerPool`."""
    with WorkerPool(jobs=jobs, mode=mode) as pool:
        return pool.map(fn, items)
