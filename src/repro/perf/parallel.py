"""Executor abstraction: opt-in parallelism with a bit-identical serial path.

The mapping-space walk is embarrassingly parallel across layers,
candidates, and (technique x model) harness runs.  This module provides
the one knob that controls all of them:

* ``REPRO_JOBS`` — worker count.  Unset or ``1`` selects the serial
  path, which executes exactly the same code as before this layer
  existed (bit-identical results, no pools, no pickling).  ``0`` or
  ``auto`` selects ``os.cpu_count()``.
* ``REPRO_EXECUTOR`` — ``process`` (default; real speedup for the
  pure-Python cost model) or ``thread`` (cheaper startup, useful when
  the work releases the GIL or for testing).

Work is always dispatched and collected in input order, so parallel
results are deterministic regardless of completion order.

Parallel maps are *supervised* (see :mod:`repro.resilience`): each task
gets a wall-clock budget (``REPRO_TASK_TIMEOUT``), bounded retries with
deterministic exponential backoff (``REPRO_MAX_RETRIES``,
``REPRO_RETRY_BACKOFF``), an automatic executor rebuild after a broken
pool or a hung worker, and a last-resort in-parent serial fallback for a
task that crashed in every worker.  Fault-free runs take none of these
paths and stay bit-identical to the unsupervised pipeline.

The pool here is *per-task* parallelism: each dispatched job pickles its
payload and cold workers re-derive warm state per campaign.  For the
fused cross-layer evaluation there is a cheaper substrate —
:mod:`repro.perf.shm_fleet` shards one SoA block zero-copy over a
persistent warm worker fleet (``REPRO_SHM_EVAL``), and
``REPRO_FUSED_SHARDS`` defaults to this module's :func:`resolve_jobs`
so both layers agree on the hardware's worker budget.  When the fused
path is enabled and the mapper supports it, the evaluator routes the
step through the fleet and this pool only picks up layers the fused
path hands back.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from repro.resilience.errors import (
    WorkerCrashError,
    WorkerTimeoutError,
    as_repro_error,
    is_retryable,
)
from repro.resilience.fault_injection import attempt_scope
from repro.resilience.supervisor import RetryPolicy

__all__ = ["resolve_jobs", "resolve_executor_mode", "parallel_map", "WorkerPool"]

T = TypeVar("T")
R = TypeVar("R")

#: Junk REPRO_JOBS values already warned about (warn once per value).
_WARNED_JOBS: set = set()


def resolve_jobs(jobs: Optional[object] = None) -> int:
    """Resolve a worker count from an explicit value or ``REPRO_JOBS``."""
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "1")
    if isinstance(jobs, str):
        if jobs.strip().lower() in ("auto", "0"):
            return os.cpu_count() or 1
        try:
            jobs = int(jobs)
        except ValueError:
            if jobs not in _WARNED_JOBS:
                _WARNED_JOBS.add(jobs)
                warnings.warn(
                    f"ignoring non-numeric REPRO_JOBS value {jobs!r}; "
                    "running serial (1 worker) — use an integer, 'auto', "
                    "or 0",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


def resolve_executor_mode(mode: Optional[str] = None) -> str:
    """Resolve the executor kind (``process`` / ``thread``)."""
    mode = mode or os.environ.get("REPRO_EXECUTOR", "process")
    mode = mode.strip().lower()
    if mode not in ("process", "thread"):
        raise ValueError(f"unknown executor mode {mode!r}")
    return mode


def _supervised_task(
    fn: Callable[[T], R], item: T, attempt: int, allow_kill: bool
) -> R:
    """Worker-side wrapper: runs ``fn(item)`` under the ambient fault-
    injection attempt, so a retried task re-rolls its injected faults.
    Module-level so process pools can pickle it."""
    with attempt_scope(attempt, allow_kill=allow_kill):
        return fn(item)


_UNSET = object()


class WorkerPool:
    """Lazily created, reusable executor with a serial fallback.

    With ``jobs <= 1`` no executor is ever created and :meth:`map` is a
    plain list comprehension — the exact pre-existing serial semantics.
    Parallel maps are supervised per ``retry_policy``.

    Args:
        jobs: Worker count (None reads ``REPRO_JOBS``).
        mode: ``process``/``thread`` (None reads ``REPRO_EXECUTOR``).
        task_timeout: Per-task seconds before a worker is declared hung
            (None reads ``REPRO_TASK_TIMEOUT``; 0/unset disables).
        max_retries: Per-task retry budget (None reads
            ``REPRO_MAX_RETRIES``, default 3).
    """

    def __init__(
        self,
        jobs: Optional[object] = None,
        mode: Optional[str] = None,
        task_timeout: Optional[object] = None,
        max_retries: Optional[int] = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.mode = resolve_executor_mode(mode)
        self.retry_policy = RetryPolicy.from_env(
            max_retries=max_retries, task_timeout=task_timeout
        )
        self._executor: Optional[Executor] = None
        #: Supervision counters (all zero on a fault-free run).
        self.supervision: Dict[str, int] = {
            "retries": 0,
            "timeouts": 0,
            "pool_rebuilds": 0,
            "serial_fallbacks": 0,
        }

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.mode == "process":
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
            else:
                self._executor = ThreadPoolExecutor(max_workers=self.jobs)
        return self._executor

    def _abandon_executor(self) -> None:
        """Tear down a broken/hung executor; the next round rebuilds it.

        Process workers are killed outright (a hung worker never drains
        on its own); thread workers cannot be killed, so their executor
        is abandoned without waiting and the threads die with the task.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        self.supervision["pool_rebuilds"] += 1
        processes = list(getattr(executor, "_processes", {}).values())
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        for process in processes:
            try:
                process.kill()
            except Exception:  # pragma: no cover - already dead
                pass

    # -- mapping ---------------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Order-preserving map (serial when ``jobs <= 1``)."""
        items = list(items)
        if not self.parallel or len(items) <= 1:
            return [fn(item) for item in items]
        return self._supervised_map(fn, items)

    def _serial_fallback(self, fn, item, attempt: int, index: int):
        """Last resort: run a task that failed in every worker in the
        parent process; a failure here is deterministic, so the wrapped
        error is marked non-retryable (quarantine upstream)."""
        self.supervision["serial_fallbacks"] += 1
        try:
            return _supervised_task(fn, item, attempt, False)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            error = as_repro_error(
                exc,
                "task failed in every worker and in the serial fallback",
                task_index=index,
                attempts=attempt + 1,
            )
            error.retryable = False
            raise error from exc

    def _supervised_map(self, fn, items: List) -> List:
        policy = self.retry_policy
        allow_kill = self.mode == "process"
        count = len(items)
        results: List = [_UNSET] * count
        attempts = [0] * count
        remaining = list(range(count))
        while remaining:
            executor = self._ensure_executor()
            futures = {
                i: executor.submit(
                    _supervised_task, fn, items[i], attempts[i], allow_kill
                )
                for i in remaining
            }
            retry: List[int] = []
            abandoned = False
            for i in remaining:
                future = futures[i]
                if abandoned:
                    # The executor was torn down mid-round: harvest tasks
                    # that already finished, resubmit the rest next round
                    # without charging their retry budget (they are
                    # victims, not culprits).
                    if future.done() and not future.cancelled() and (
                        future.exception() is None
                    ):
                        results[i] = future.result()
                    else:
                        retry.append(i)
                    continue
                try:
                    results[i] = future.result(timeout=policy.task_timeout)
                except FutureTimeoutError:
                    self.supervision["timeouts"] += 1
                    self._abandon_executor()
                    abandoned = True
                    attempts[i] += 1
                    if attempts[i] > policy.max_retries:
                        raise WorkerTimeoutError(
                            f"task exceeded REPRO_TASK_TIMEOUT="
                            f"{policy.task_timeout:g}s on every attempt",
                            retryable=False,
                            task_index=i,
                            attempts=attempts[i],
                        ) from None
                    self.supervision["retries"] += 1
                    retry.append(i)
                except BrokenExecutor as exc:
                    # The pool died (SIGKILLed/crashed worker).  Rebuild
                    # and retry every uncollected task; the culprit is
                    # unknowable, so all of them pay one attempt.
                    self._abandon_executor()
                    abandoned = True
                    attempts[i] += 1
                    if attempts[i] > policy.max_retries:
                        results[i] = self._serial_fallback(
                            fn, items[i], attempts[i], i
                        )
                    else:
                        self.supervision["retries"] += 1
                        retry.append(i)
                    del exc
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    # The task itself raised inside a healthy worker.
                    if not is_retryable(exc):
                        raise
                    attempts[i] += 1
                    if attempts[i] > policy.max_retries:
                        results[i] = self._serial_fallback(
                            fn, items[i], attempts[i], i
                        )
                    else:
                        self.supervision["retries"] += 1
                        policy.sleep_before_retry(f"task-{i}", attempts[i])
                        retry.append(i)
            remaining = retry
        crashed = [i for i, r in enumerate(results) if r is _UNSET]
        if crashed:  # pragma: no cover - defensive (all paths fill or raise)
            raise WorkerCrashError(
                f"tasks {crashed} never completed", retryable=False
            )
        return results

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        """Release the executor; idempotent (safe to call repeatedly)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    #: Backwards-compatible alias.
    close = shutdown

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.shutdown()
        except Exception:
            pass


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[object] = None,
    mode: Optional[str] = None,
) -> List[R]:
    """One-shot order-preserving map over a temporary :class:`WorkerPool`."""
    with WorkerPool(jobs=jobs, mode=mode) as pool:
        return pool.map(fn, items)
