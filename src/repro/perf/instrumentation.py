"""Per-stage timers and throughput counters for the evaluation pipeline.

Speedups are measured, not asserted: every :class:`CostEvaluator` owns a
:class:`StageTimers` that attributes wall-clock to pipeline stages
(mapping search, cost aggregation, area/power) so cache and parallelism
wins show up as numbers in ``perf_summary()`` / the CLI rather than
claims in a docstring.  :class:`BatchEvalStats` plays the same role for
the vectorized candidate-scoring kernels (``repro.cost.batch``): every
batch-capable mapper owns one and records which path scored how many
candidates in how long.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["StageTimers", "BatchEvalStats"]


class BatchEvalStats:
    """Counters/timers of the candidate-scoring inner loop.

    Tracks, per mapper instance, how many candidates were scored by the
    vectorized batch kernels versus the scalar reference path (selected
    by ``REPRO_BATCH_EVAL=0`` or an int64-overflow fallback), and the
    wall-clock each path consumed.  Plain attributes only, so instances
    pickle cleanly with their mapper into worker processes.
    """

    def __init__(self) -> None:
        self.batches = 0
        self.batch_candidates = 0
        self.batch_feasible = 0
        self.batch_seconds = 0.0
        self.scalar_searches = 0
        self.scalar_candidates = 0
        self.scalar_seconds = 0.0
        self.int64_fallbacks = 0
        self.fused_blocks = 0
        self.fused_layers = 0
        self.fused_candidates = 0
        self.fused_feasible = 0
        self.fused_seconds = 0.0
        self.fused_fallbacks = 0

    def record_batch(
        self, candidates: int, feasible: int, seconds: float
    ) -> None:
        self.batches += 1
        self.batch_candidates += candidates
        self.batch_feasible += feasible
        self.batch_seconds += seconds

    def record_scalar(self, candidates: int, seconds: float) -> None:
        self.scalar_searches += 1
        self.scalar_candidates += candidates
        self.scalar_seconds += seconds

    def record_fallback(self) -> None:
        self.int64_fallbacks += 1

    def record_fused(
        self, layers: int, candidates: int, feasible: int, seconds: float
    ) -> None:
        """One fused cross-layer block: ``layers`` layer searches resolved
        by a single SoA evaluation over ``candidates`` rows."""
        self.fused_blocks += 1
        self.fused_layers += layers
        self.fused_candidates += candidates
        self.fused_feasible += feasible
        self.fused_seconds += seconds

    def record_fused_fallback(self) -> None:
        """One layer the fused path handed back to the per-layer search
        (int64-unsafe candidate set, empty plan, or block failure)."""
        self.fused_fallbacks += 1

    @property
    def batch_candidates_per_second(self) -> float:
        if self.batch_seconds <= 0:
            return 0.0
        return self.batch_candidates / self.batch_seconds

    @property
    def scalar_candidates_per_second(self) -> float:
        if self.scalar_seconds <= 0:
            return 0.0
        return self.scalar_candidates / self.scalar_seconds

    @property
    def fused_candidates_per_second(self) -> float:
        if self.fused_seconds <= 0:
            return 0.0
        return self.fused_candidates / self.fused_seconds

    def delta_since(self, before: "BatchEvalStats") -> "BatchEvalStats":
        """Counters accrued since ``before`` (a ``copy.copy`` snapshot).

        Process-pool workers search on a *pickled copy* of the mapper, so
        the parent's stats never see their recordings; jobs return this
        delta for the parent to :meth:`merge` (thread pools record into
        the shared instance directly and must not merge again).
        """
        delta = BatchEvalStats()
        delta.batches = self.batches - before.batches
        delta.batch_candidates = self.batch_candidates - before.batch_candidates
        delta.batch_feasible = self.batch_feasible - before.batch_feasible
        delta.batch_seconds = self.batch_seconds - before.batch_seconds
        delta.scalar_searches = self.scalar_searches - before.scalar_searches
        delta.scalar_candidates = (
            self.scalar_candidates - before.scalar_candidates
        )
        delta.scalar_seconds = self.scalar_seconds - before.scalar_seconds
        delta.int64_fallbacks = self.int64_fallbacks - before.int64_fallbacks
        delta.fused_blocks = self.fused_blocks - before.fused_blocks
        delta.fused_layers = self.fused_layers - before.fused_layers
        delta.fused_candidates = (
            self.fused_candidates - before.fused_candidates
        )
        delta.fused_feasible = self.fused_feasible - before.fused_feasible
        delta.fused_seconds = self.fused_seconds - before.fused_seconds
        delta.fused_fallbacks = self.fused_fallbacks - before.fused_fallbacks
        return delta

    def merge(self, other: "BatchEvalStats") -> None:
        """Fold another instance in (e.g. counters from a worker)."""
        self.batches += other.batches
        self.batch_candidates += other.batch_candidates
        self.batch_feasible += other.batch_feasible
        self.batch_seconds += other.batch_seconds
        self.scalar_searches += other.scalar_searches
        self.scalar_candidates += other.scalar_candidates
        self.scalar_seconds += other.scalar_seconds
        self.int64_fallbacks += other.int64_fallbacks
        self.fused_blocks += other.fused_blocks
        self.fused_layers += other.fused_layers
        self.fused_candidates += other.fused_candidates
        self.fused_feasible += other.fused_feasible
        self.fused_seconds += other.fused_seconds
        self.fused_fallbacks += other.fused_fallbacks

    def reset(self) -> None:
        self.__init__()

    def as_dict(self) -> Dict[str, float]:
        return {
            "batches": self.batches,
            "batch_candidates": self.batch_candidates,
            "batch_feasible": self.batch_feasible,
            "batch_seconds": self.batch_seconds,
            "batch_candidates_per_second": self.batch_candidates_per_second,
            "scalar_searches": self.scalar_searches,
            "scalar_candidates": self.scalar_candidates,
            "scalar_seconds": self.scalar_seconds,
            "scalar_candidates_per_second": self.scalar_candidates_per_second,
            "int64_fallbacks": self.int64_fallbacks,
            "fused_blocks": self.fused_blocks,
            "fused_layers": self.fused_layers,
            "fused_candidates": self.fused_candidates,
            "fused_feasible": self.fused_feasible,
            "fused_seconds": self.fused_seconds,
            "fused_candidates_per_second": self.fused_candidates_per_second,
            "fused_fallbacks": self.fused_fallbacks,
        }


class StageTimers:
    """Accumulate (seconds, calls) per named pipeline stage."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - started)

    def record(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    def total(self) -> float:
        return sum(self.seconds.values())

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls[name]}
            for name in self.seconds
        }
