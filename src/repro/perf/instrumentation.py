"""Per-stage timers and throughput counters for the evaluation pipeline.

Speedups are measured, not asserted: every :class:`CostEvaluator` owns a
:class:`StageTimers` that attributes wall-clock to pipeline stages
(mapping search, cost aggregation, area/power) so cache and parallelism
wins show up as numbers in ``perf_summary()`` / the CLI rather than
claims in a docstring.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["StageTimers"]


class StageTimers:
    """Accumulate (seconds, calls) per named pipeline stage."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - started)

    def record(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    def total(self) -> float:
        return sum(self.seconds.values())

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls[name]}
            for name in self.seconds
        }
