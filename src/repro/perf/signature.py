"""Cache signatures: exactly what the mapping search reads.

The layer-level mapping cache (``repro.perf.mapping_cache``) is only
correct if its keys capture *every* input the mapper consumes — and only
those, so that sweeps over search-irrelevant parameters hit the cache.
This module centralizes that contract:

* the candidate generators (``enumerate_spatial_unrollings``,
  ``greedy_tile``, ``build_output_stationary_mapping``, the random
  tiling sampler) read ``pes``, ``l1_bytes``, ``l2_bytes`` and
  ``bytes_per_element``;
* feasibility checks additionally read the NoC configuration
  (``noc_datawidth_bits``, physical/virtual unicast links);
* only candidate *scoring* reads ``offchip_bw_mbps`` / ``freq_mhz``
  (through ``dram_bytes_per_cycle`` -> ``t_dma``), and a recorded
  :class:`repro.mapping.mapper.SearchTrace` can be exactly re-scored for
  those.

Hence :func:`config_signature` keys the exact-result cache tier and
:func:`search_invariant_signature` (the same minus bandwidth and clock)
keys the re-scorable trace tier.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arch.accelerator import AcceleratorConfig
from repro.workloads.layers import OPERANDS, LayerShape

__all__ = [
    "layer_signature",
    "config_signature",
    "search_invariant_signature",
    "mapper_signature",
    "supports_tracing",
]


def layer_signature(layer: LayerShape, include_name: bool = False) -> Tuple:
    """Shape identity of a layer as seen by the mapping search.

    The search reads the operator type, the (padded) loop bounds, and the
    stride (through the input-halo tile extents) — never ``repeats`` or
    the layer's own ``bytes_per_element`` (precision comes from the
    hardware config).  ``name`` is excluded by default so identical
    shapes share cache entries across models; mappers whose candidate
    stream is seeded by the name (``RandomSearchMapper``) set
    ``include_name``.
    """
    base: Tuple = (layer.operator.value, layer.dims, layer.stride)
    return base + (layer.name,) if include_name else base


def config_signature(config: AcceleratorConfig) -> Tuple:
    """Full mapping-relevant identity of a hardware configuration."""
    return search_invariant_signature(config) + (
        config.offchip_bw_mbps,
        config.freq_mhz,
    )


def search_invariant_signature(config: AcceleratorConfig) -> Tuple:
    """Config fields that determine the candidate set, feasibility, and
    every score component except ``t_dma`` (see module docstring)."""
    return (
        config.pes,
        config.l1_bytes,
        config.l2_kb,
        config.noc_datawidth_bits,
        tuple(config.phys_unicast_factor[op] for op in OPERANDS),
        tuple(config.virt_unicast[op] for op in OPERANDS),
        config.bytes_per_element,
    )


def mapper_signature(mapper) -> Optional[Tuple]:
    """Cache identity of a mapper, or None when it cannot be cached."""
    sig = getattr(mapper, "signature", None)
    if sig is None:
        return None
    return tuple(sig())


def supports_tracing(mapper) -> bool:
    """True when ``mapper`` implements the traced-search cache protocol
    (``signature()`` + ``search_with_trace()``)."""
    return callable(getattr(mapper, "signature", None)) and callable(
        getattr(mapper, "search_with_trace", None)
    )
