"""Validated environment knobs for the campaign-wide fast paths.

The perf layer is controlled by environment variables so fast paths can
be toggled without touching call sites (``REPRO_JOBS`` set the pattern).
Knob values arrive from shells, CI matrices, and worker environments, so
a junk value must *never* raise deep inside an evaluation — it warns
once (per knob, per value, like :func:`repro.perf.parallel.resolve_jobs`)
and falls back to the safe default path.

Knobs resolved here:

* ``REPRO_FUSED_EVAL`` — campaign-wide fused cross-layer candidate
  evaluation (:mod:`repro.cost.fused`).  Default off (opt-in).
* ``REPRO_TREE_COMPILE`` — postfix-compiled bottleneck-tree evaluation
  (:mod:`repro.core.bottleneck.compile`).  Default on; ``0`` selects
  the recursive reference walk.
* ``REPRO_CACHE_PLANE`` — directory of the cross-process mapping-cache
  plane (:mod:`repro.perf.cache_plane`).  Unset/empty/``0`` disables;
  an unusable value (e.g. a path that exists as a regular file) warns
  and disables instead of failing the campaign.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Set, Tuple

__all__ = [
    "env_flag",
    "fused_eval_enabled",
    "tree_compile_enabled",
    "cache_plane_dir",
]

_TRUE = frozenset({"1", "true", "on", "yes"})
_FALSE = frozenset({"0", "false", "off", "no"})

#: (knob, value) pairs already warned about (warn once per junk value).
_WARNED: Set[Tuple[str, str]] = set()


def _warn_once(name: str, raw: str, fallback: str) -> None:
    if (name, raw) in _WARNED:
        return
    _WARNED.add((name, raw))
    warnings.warn(
        f"ignoring invalid {name} value {raw!r}; {fallback}",
        RuntimeWarning,
        stacklevel=3,
    )


def env_flag(name: str, default: bool, override: Optional[bool] = None) -> bool:
    """Resolve a boolean knob: explicit ``override`` wins, then the
    environment (``1/true/on/yes`` vs ``0/false/off/no``, case
    insensitive), then ``default``.  Junk values warn once and fall back
    to the default rather than raising inside a worker."""
    if override is not None:
        return bool(override)
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    _warn_once(
        name,
        raw,
        f"falling back to the default path ({'on' if default else 'off'}) "
        "— use 0/1, on/off, true/false, or yes/no",
    )
    return default


def fused_eval_enabled(override: Optional[bool] = None) -> bool:
    """Whether the fused cross-layer evaluation path is selected.

    Opt-in: defaults off so campaigns change behaviour only when asked
    (the fused path skips recording re-scorable search traces — results
    are still bit-identical, see :mod:`repro.cost.fused`).
    """
    return env_flag("REPRO_FUSED_EVAL", False, override)


def tree_compile_enabled(override: Optional[bool] = None) -> bool:
    """Whether bottleneck trees evaluate through compiled postfix
    programs (default) or the recursive reference walk (``0``)."""
    return env_flag("REPRO_TREE_COMPILE", True, override)


def cache_plane_dir() -> Optional[str]:
    """The validated ``REPRO_CACHE_PLANE`` directory, or None.

    Unset, empty, and the usual false spellings disable the plane.  A
    value that cannot be used as a directory (it exists as a regular
    file, or cannot be created) warns once and disables the plane — the
    campaign continues on the per-process cache.
    """
    raw = os.environ.get("REPRO_CACHE_PLANE")
    if raw is None:
        return None
    value = raw.strip()
    if not value or value.lower() in _FALSE:
        return None
    if os.path.exists(value) and not os.path.isdir(value):
        _warn_once(
            "REPRO_CACHE_PLANE",
            raw,
            "it exists but is not a directory; continuing without the "
            "cache plane",
        )
        return None
    try:
        os.makedirs(value, exist_ok=True)
    except OSError as exc:
        _warn_once(
            "REPRO_CACHE_PLANE",
            raw,
            f"the directory cannot be created ({exc}); continuing "
            "without the cache plane",
        )
        return None
    return value
