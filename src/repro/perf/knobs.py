"""Validated environment knobs for the campaign-wide fast paths.

The perf layer is controlled by environment variables so fast paths can
be toggled without touching call sites (``REPRO_JOBS`` set the pattern).
Knob values arrive from shells, CI matrices, and worker environments, so
a junk value must *never* raise deep inside an evaluation — it warns
once (per knob, per value, like :func:`repro.perf.parallel.resolve_jobs`)
and falls back to the safe default path.

Knobs resolved here:

* ``REPRO_FUSED_EVAL`` — campaign-wide fused cross-layer candidate
  evaluation (:mod:`repro.cost.fused`).  Default off (opt-in).
* ``REPRO_TREE_COMPILE`` — postfix-compiled bottleneck-tree evaluation
  (:mod:`repro.core.bottleneck.compile`).  Default on; ``0`` selects
  the recursive reference walk.
* ``REPRO_CACHE_PLANE`` — directory of the cross-process mapping-cache
  plane (:mod:`repro.perf.cache_plane`).  Unset/empty/``0`` disables;
  an unusable value (e.g. a path that exists as a regular file) warns
  and disables instead of failing the campaign.
* ``REPRO_SHM_EVAL`` — shard fused cross-layer blocks over the
  persistent shared-memory worker fleet (:mod:`repro.perf.shm_fleet`).
  Default off (opt-in); implies the fused path.
* ``REPRO_FUSED_SHARDS`` — shard count for ``REPRO_SHM_EVAL`` (default:
  the resolved ``REPRO_JOBS`` worker count; ``auto``/``0`` selects
  ``os.cpu_count()``).
* ``REPRO_SHM_MIN_ROWS`` — minimum candidate rows per shard before a
  block is worth dispatching to the fleet (adaptive shard sizing; tiny
  steps evaluate in-process to skip the dispatch overhead).
* ``REPRO_SERVICE_MAX_CONCURRENT`` — campaign-service admission cap:
  how many campaigns interleave at once (:mod:`repro.service`).
* ``REPRO_SERVICE_STEP_QUANTUM`` — acquisition attempts granted per
  unit of tenant weight per scheduler turn.
* ``REPRO_TENANT_QUOTA`` — default per-tenant total step budget;
  unset/``0``/``none``/``unlimited`` means no quota.
* ``REPRO_SERVICE_MAX_QUEUE`` — bound on the service's waiting queue:
  submissions past it are shed with HTTP 503 + ``Retry-After`` instead
  of queueing unboundedly.
* ``REPRO_SERVICE_TENANT_INFLIGHT`` — per-tenant cap on unsettled
  campaigns; submissions past it are shed with HTTP 429.

Valid values are memoized per ``(knob, raw value)`` so hot paths (the
per-node compiled-tree check, the per-step fused gate) never re-parse an
unchanged environment; junk values stay on the uncached warn-once path.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Set, Tuple

__all__ = [
    "env_flag",
    "fused_eval_enabled",
    "tree_compile_enabled",
    "cache_plane_dir",
    "shm_eval_enabled",
    "fused_shards",
    "shm_min_shard_rows",
    "service_max_concurrent",
    "service_step_quantum",
    "service_max_queue",
    "service_tenant_inflight",
    "tenant_step_quota",
]

_TRUE = frozenset({"1", "true", "on", "yes"})
_FALSE = frozenset({"0", "false", "off", "no"})

#: (knob, value) pairs already warned about (warn once per junk value).
_WARNED: Set[Tuple[str, str]] = set()

#: Memoized parses of *valid* values, keyed by (knob, raw, default) so an
#: environment change is picked up immediately while repeated reads of an
#: unchanged value cost one dict probe.  Junk values are never cached:
#: they keep flowing through the warn-once path.
_FLAG_CACHE: Dict[Tuple[str, str, bool], bool] = {}

#: Same contract for integer-valued knobs: only valid parses are cached.
_INT_CACHE: Dict[Tuple[str, str], Optional[int]] = {}


def _warn_once(name: str, raw: str, fallback: str) -> None:
    if (name, raw) in _WARNED:
        return
    _WARNED.add((name, raw))
    warnings.warn(
        f"ignoring invalid {name} value {raw!r}; {fallback}",
        RuntimeWarning,
        stacklevel=3,
    )


def env_flag(name: str, default: bool, override: Optional[bool] = None) -> bool:
    """Resolve a boolean knob: explicit ``override`` wins, then the
    environment (``1/true/on/yes`` vs ``0/false/off/no``, case
    insensitive), then ``default``.  Junk values warn once and fall back
    to the default rather than raising inside a worker."""
    if override is not None:
        return bool(override)
    raw = os.environ.get(name)
    if raw is None:
        return default
    cached = _FLAG_CACHE.get((name, raw, default))
    if cached is not None:
        return cached
    value = raw.strip().lower()
    if value in _TRUE:
        _FLAG_CACHE[(name, raw, default)] = True
        return True
    if value in _FALSE:
        _FLAG_CACHE[(name, raw, default)] = False
        return False
    _warn_once(
        name,
        raw,
        f"falling back to the default path ({'on' if default else 'off'}) "
        "— use 0/1, on/off, true/false, or yes/no",
    )
    return default


def fused_eval_enabled(override: Optional[bool] = None) -> bool:
    """Whether the fused cross-layer evaluation path is selected.

    Opt-in: defaults off so campaigns change behaviour only when asked
    (the fused path skips recording re-scorable search traces — results
    are still bit-identical, see :mod:`repro.cost.fused`).
    """
    return env_flag("REPRO_FUSED_EVAL", False, override)


def tree_compile_enabled(override: Optional[bool] = None) -> bool:
    """Whether bottleneck trees evaluate through compiled postfix
    programs (default) or the recursive reference walk (``0``)."""
    return env_flag("REPRO_TREE_COMPILE", True, override)


def shm_eval_enabled(override: Optional[bool] = None) -> bool:
    """Whether fused blocks are sharded over the shared-memory worker
    fleet (:mod:`repro.perf.shm_fleet`).

    Opt-in: defaults off.  Enabling it implies the fused cross-layer
    path — the fleet shards the same :class:`FusedCandidateBlock` the
    single-process fused evaluation would build, and results stay
    bit-identical to it (and to the scalar reference).
    """
    return env_flag("REPRO_SHM_EVAL", False, override)


def fused_shards(override: Optional[int] = None) -> int:
    """The shard count used when ``REPRO_SHM_EVAL`` is on.

    Explicit ``override`` wins, then ``REPRO_FUSED_SHARDS``
    (``auto``/``0`` select ``os.cpu_count()``), then the resolved
    ``REPRO_JOBS`` worker count — so an unconfigured fleet matches the
    parallelism the campaign already asked for.  Junk values warn once
    and fall back to that default.  Always at least 1.
    """
    from repro.perf.parallel import resolve_jobs

    if override is not None:
        return max(1, int(override))
    raw = os.environ.get("REPRO_FUSED_SHARDS")
    if raw is None:
        return max(1, resolve_jobs(None))
    value = raw.strip().lower()
    if value in {"auto", "0"}:
        return max(1, os.cpu_count() or 1)
    try:
        shards = int(value)
    except ValueError:
        shards = -1
    if shards < 0:
        _warn_once(
            "REPRO_FUSED_SHARDS",
            raw,
            "falling back to the resolved REPRO_JOBS worker count — use "
            "a positive integer or 'auto'",
        )
        return max(1, resolve_jobs(None))
    return max(1, shards)


def shm_min_shard_rows(override: Optional[int] = None) -> int:
    """Minimum candidate rows per shard (``REPRO_SHM_MIN_ROWS``).

    Blocks smaller than one shard's worth of rows evaluate in-process:
    the fleet's dispatch overhead (segment creation + IPC) only pays
    for itself on wide blocks.  Junk values warn once and fall back to
    the default (4096 rows).  Always at least 1.
    """
    default = 4096
    if override is not None:
        return max(1, int(override))
    raw = os.environ.get("REPRO_SHM_MIN_ROWS")
    if raw is None:
        return default
    try:
        rows = int(raw.strip())
    except ValueError:
        rows = 0
    if rows <= 0:
        _warn_once(
            "REPRO_SHM_MIN_ROWS",
            raw,
            f"falling back to the default minimum shard size ({default} "
            "rows) — use a positive integer",
        )
        return default
    return rows


def _positive_int_knob(name: str, default: int, override: Optional[int]) -> int:
    """Shared parser for positive-integer service knobs: explicit
    ``override`` wins, junk values warn once and fall back to
    ``default``, results are always at least 1."""
    if override is not None:
        return max(1, int(override))
    raw = os.environ.get(name)
    if raw is None:
        return default
    cached = _INT_CACHE.get((name, raw))
    if cached is not None:
        return cached
    try:
        value = int(raw.strip())
    except ValueError:
        value = 0
    if value <= 0:
        _warn_once(
            name,
            raw,
            f"falling back to the default ({default}) — use a positive "
            "integer",
        )
        return default
    _INT_CACHE[(name, raw)] = value
    return value


def service_max_concurrent(override: Optional[int] = None) -> int:
    """Campaign-service admission cap (``REPRO_SERVICE_MAX_CONCURRENT``).

    How many campaigns may be resident (interleaving over the shared
    worker fleet) at once; further submissions wait in submission order.
    Junk values warn once and fall back to the default (4).
    """
    return _positive_int_knob("REPRO_SERVICE_MAX_CONCURRENT", 4, override)


def service_step_quantum(override: Optional[int] = None) -> int:
    """Steps granted per unit of tenant weight per scheduler turn
    (``REPRO_SERVICE_STEP_QUANTUM``).

    The default (1) interleaves at acquisition-attempt granularity —
    the finest slicing the checkpoint schema supports.  Junk values
    warn once and fall back to the default.
    """
    return _positive_int_knob("REPRO_SERVICE_STEP_QUANTUM", 1, override)


def service_max_queue(override: Optional[int] = None) -> int:
    """Bound on the campaign-service waiting queue
    (``REPRO_SERVICE_MAX_QUEUE``).

    Submissions arriving while this many campaigns are already waiting
    for admission are *shed* — rejected with HTTP 503 and a
    ``Retry-After`` hint — instead of queueing without bound.  Junk
    values warn once and fall back to the default (64).
    """
    return _positive_int_knob("REPRO_SERVICE_MAX_QUEUE", 64, override)


def service_tenant_inflight(override: Optional[int] = None) -> int:
    """Per-tenant cap on unsettled campaigns
    (``REPRO_SERVICE_TENANT_INFLIGHT``).

    A tenant already holding this many queued/running/starved campaigns
    has further submissions shed with HTTP 429 (the tenant's fault, so
    the global queue bound stays available to other tenants).  Junk
    values warn once and fall back to the default (8).
    """
    return _positive_int_knob("REPRO_SERVICE_TENANT_INFLIGHT", 8, override)


def tenant_step_quota(override: Optional[int] = "env") -> Optional[int]:
    """Default per-tenant total step budget (``REPRO_TENANT_QUOTA``).

    ``None`` (the default when unset) means unlimited; so do ``0``,
    ``none``, and ``unlimited``.  A tenant that exhausts its quota is
    starved — its campaigns park at a checkpoint — never failed.  Junk
    values warn once and fall back to unlimited.
    """
    if override != "env":
        return None if override is None else max(1, int(override))
    raw = os.environ.get("REPRO_TENANT_QUOTA")
    if raw is None:
        return None
    cached = _INT_CACHE.get(("REPRO_TENANT_QUOTA", raw))
    if cached is not None:
        return cached
    value = raw.strip().lower()
    if value in {"", "0", "none", "unlimited"}:
        return None
    try:
        quota = int(value)
    except ValueError:
        quota = -1
    if quota < 0:
        _warn_once(
            "REPRO_TENANT_QUOTA",
            raw,
            "falling back to no quota (unlimited) — use a positive "
            "integer, or 0/none/unlimited",
        )
        return None
    _INT_CACHE[("REPRO_TENANT_QUOTA", raw)] = quota
    return quota


def cache_plane_dir() -> Optional[str]:
    """The validated ``REPRO_CACHE_PLANE`` directory, or None.

    Unset, empty, and the usual false spellings disable the plane.  A
    value that cannot be used as a directory (it exists as a regular
    file, or cannot be created) warns once and disables the plane — the
    campaign continues on the per-process cache.
    """
    raw = os.environ.get("REPRO_CACHE_PLANE")
    if raw is None:
        return None
    value = raw.strip()
    if not value or value.lower() in _FALSE:
        return None
    if os.path.exists(value) and not os.path.isdir(value):
        _warn_once(
            "REPRO_CACHE_PLANE",
            raw,
            "it exists but is not a directory; continuing without the "
            "cache plane",
        )
        return None
    try:
        os.makedirs(value, exist_ok=True)
    except OSError as exc:
        _warn_once(
            "REPRO_CACHE_PLANE",
            raw,
            f"the directory cannot be created ({exc}); continuing "
            "without the cache plane",
        )
        return None
    return value
