"""Performance layer: layer-level mapping cache + parallel evaluation.

Three independent accelerations of the codesign hot path, all preserving
bit-identical results versus the serial/cold path:

* :mod:`repro.perf.mapping_cache` — a shared (layer, config-signature,
  mapper-signature) cache with an exact tier and a re-scorable trace
  tier, so sweeps over mapping-irrelevant parameters (off-chip
  bandwidth, clock) re-score instead of re-search;
* :mod:`repro.perf.parallel` — a ``REPRO_JOBS``-controlled
  process/thread pool abstraction with a serial fallback used for
  per-layer mapping optimization and (technique x model) harness runs;
* :mod:`repro.perf.cache_plane` — a cross-process append-only segment
  store (``REPRO_CACHE_PLANE``) the mapping cache writes through to, so
  concurrently running processes share search outcomes;
* :mod:`repro.perf.shm_fleet` — a persistent warm worker fleet
  (``REPRO_SHM_EVAL``) that shards fused candidate blocks zero-copy
  over shared memory, scaling one campaign step across cores;
* :mod:`repro.perf.instrumentation` — per-stage timers and counters so
  speedups are measured, not asserted.

:mod:`repro.perf.knobs` centralizes the validated environment switches
(``REPRO_FUSED_EVAL``, ``REPRO_TREE_COMPILE``, ``REPRO_CACHE_PLANE``,
``REPRO_SHM_EVAL``, ``REPRO_FUSED_SHARDS``, ``REPRO_SHM_MIN_ROWS``).
See ``docs/performance.md`` for the knobs and measured numbers.
"""

from repro.perf.cache_plane import CachePlane, PlaneStats
from repro.perf.instrumentation import BatchEvalStats, StageTimers
from repro.perf.knobs import (
    cache_plane_dir,
    fused_eval_enabled,
    fused_shards,
    shm_eval_enabled,
    shm_min_shard_rows,
    tree_compile_enabled,
)
from repro.perf.mapping_cache import (
    CacheStats,
    CachingMapper,
    MappingCache,
    shared_cache,
)
from repro.perf.parallel import (
    WorkerPool,
    parallel_map,
    resolve_executor_mode,
    resolve_jobs,
)
from repro.perf.shm_fleet import FleetStats, ShmFleet, shared_fleet
from repro.perf.signature import (
    config_signature,
    layer_signature,
    mapper_signature,
    search_invariant_signature,
    supports_tracing,
)

__all__ = [
    "CachePlane",
    "PlaneStats",
    "BatchEvalStats",
    "StageTimers",
    "cache_plane_dir",
    "fused_eval_enabled",
    "fused_shards",
    "shm_eval_enabled",
    "shm_min_shard_rows",
    "tree_compile_enabled",
    "FleetStats",
    "ShmFleet",
    "shared_fleet",
    "CacheStats",
    "CachingMapper",
    "MappingCache",
    "shared_cache",
    "WorkerPool",
    "parallel_map",
    "resolve_executor_mode",
    "resolve_jobs",
    "config_signature",
    "layer_signature",
    "mapper_signature",
    "search_invariant_signature",
    "supports_tracing",
]
