"""Cross-process cache plane: an append-only mmap segment store.

:class:`~repro.perf.mapping_cache.MappingCache` is process-local: every
worker process (and every fresh CLI invocation without
``REPRO_MAPPING_CACHE_DIR``) re-runs mapping searches its siblings have
already paid for.  The cache plane lifts the exact and re-score tiers
into a directory of append-only **segment files** that concurrently
running processes share without a server:

* Each process appends to its **own** segment
  (``plane-<pid>-<token>.seg``), so writers never contend on a file.
* Readers :func:`mmap.mmap` every segment and index the records they
  find; a lookup miss triggers a cheap re-scan that picks up records
  other processes appended since.
* Every record is framed (magic, version, kind, lengths) and
  CRC32-guarded.  A segment that fails framing or checksum validation is
  **quarantined** — renamed to ``<segment>.corrupt``, its entries
  dropped, a one-line :class:`CacheCorruptionError` warning emitted —
  and the campaign continues on the surviving segments, mirroring the
  self-healing semantics of the pickle warm-start path.  An *incomplete
  trailing record* is not corruption: it is a sibling's in-flight
  append, and scanning simply stops before it until it completes.

Keys and values are pickled; the keys are the existing signature tuples
of :mod:`repro.perf.signature`, so the plane needs no scheme of its own.
The plane is attached by :func:`repro.perf.mapping_cache.shared_cache`
when ``REPRO_CACHE_PLANE`` names a directory (see
:func:`repro.perf.knobs.cache_plane_dir`); it is a strict write-through
layer below the in-memory tiers, so hits are bit-identical to local
ones.
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
import threading
import uuid
import warnings
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.resilience.errors import CacheCorruptionError

__all__ = [
    "KIND_RESULT",
    "KIND_TRACE",
    "PlaneStats",
    "CachePlane",
]

#: Record framing: magic, version byte, kind byte, key length, value
#: length, CRC32 over the concatenated key+value payload (all LE).
_HEADER = struct.Struct("<4sBBIII")
_MAGIC = b"RPLN"
#: On-disk record version; a segment with a stale version is skipped
#: (format evolution), only framing/CRC failures are corruption.
_VERSION = 1
#: Segment file suffixes.
_SEGMENT_SUFFIX = ".seg"
_CORRUPT_SUFFIX = ".corrupt"

#: Record kinds (one per mapping-cache tier).
KIND_RESULT = 0
KIND_TRACE = 1
_KNOWN_KINDS = frozenset({KIND_RESULT, KIND_TRACE})


@dataclass
class PlaneStats:
    """Counters of one :class:`CachePlane` handle (process-local)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    segments_quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "segments_quarantined": self.segments_quarantined,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.puts = 0
        self.segments_quarantined = 0


class CachePlane:
    """One process's handle on a shared segment directory.

    Thread-safe; every process holds its own handle (its own append
    segment and its own index built by scanning all segments).
    """

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.stats = PlaneStats()
        self._lock = threading.Lock()
        #: (kind, key) -> (segment path, value offset, value length)
        self._index: Dict[Tuple[int, Tuple], Tuple[str, int, int]] = {}
        #: Per segment, how many bytes have been scanned into the index.
        self._scanned: Dict[str, int] = {}
        #: Open read mmaps: path -> (mmap, mapped size).
        self._maps: Dict[str, Tuple[mmap.mmap, int]] = {}
        self._dead: set = set()  # quarantined (or vanished) segments
        self._own_path = os.path.join(
            self.directory,
            f"plane-{os.getpid()}-{uuid.uuid4().hex[:8]}{_SEGMENT_SUFFIX}",
        )
        self._own_handle = None  # opened lazily on first put
        self._own_size = 0

    # -- lookup/insert --------------------------------------------------------

    def get(self, kind: int, key: Tuple) -> Optional[object]:
        """The stored value, or None.  A miss re-scans the directory once
        (picking up siblings' appends) before giving up."""
        with self._lock:
            entry = self._index.get((kind, key))
            if entry is None:
                self._refresh()
                entry = self._index.get((kind, key))
            if entry is None:
                self.stats.misses += 1
                return None
            path, offset, length = entry
            try:
                buffer = self._view(path)
                value = pickle.loads(buffer[offset : offset + length])
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                # The frame checked out but the payload does not load:
                # treat the segment as corrupt and miss.
                self._quarantine(path, exc)
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return value

    def put(self, kind: int, key: Tuple, value: object) -> bool:
        """Append a record to this process's segment (skipped when the
        key is already indexed); returns True when written."""
        with self._lock:
            if (kind, key) in self._index:
                return False
            key_bytes = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
            val_bytes = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            record = (
                _HEADER.pack(
                    _MAGIC,
                    _VERSION,
                    kind,
                    len(key_bytes),
                    len(val_bytes),
                    zlib.crc32(key_bytes + val_bytes),
                )
                + key_bytes
                + val_bytes
            )
            if self._own_handle is None:
                self._own_handle = open(self._own_path, "ab")
            self._own_handle.write(record)
            self._own_handle.flush()
            value_offset = self._own_size + _HEADER.size + len(key_bytes)
            self._own_size += len(record)
            self._scanned[self._own_path] = self._own_size
            self._index[(kind, key)] = (
                self._own_path,
                value_offset,
                len(val_bytes),
            )
            self.stats.puts += 1
            return True

    # -- introspection --------------------------------------------------------

    def refresh(self) -> None:
        """Index records other processes appended since the last scan."""
        with self._lock:
            self._refresh()

    def entry_count(self) -> int:
        with self._lock:
            return len(self._index)

    def segment_count(self) -> int:
        """Live (non-quarantined) segments currently on disk."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        return sum(1 for name in names if name.endswith(_SEGMENT_SUFFIX))

    def close(self) -> None:
        with self._lock:
            if self._own_handle is not None:
                self._own_handle.close()
                self._own_handle = None
            for handle, _size in self._maps.values():
                handle.close()
            self._maps.clear()

    def __enter__(self) -> "CachePlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- scanning -------------------------------------------------------------

    def _segments(self):
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            os.path.join(self.directory, name)
            for name in names
            if name.endswith(_SEGMENT_SUFFIX)
        )

    def _refresh(self) -> None:
        for path in self._segments():
            if path in self._dead:
                continue
            try:
                size = os.path.getsize(path)
            except OSError:
                continue  # racing sibling cleanup/quarantine
            if size > self._scanned.get(path, 0):
                self._scan(path, size)

    def _scan(self, path: str, size: int) -> None:
        """Index the records in ``path[scanned:size]``; stops (without
        quarantining) at an incomplete trailing record."""
        offset = self._scanned.get(path, 0)
        try:
            buffer = self._view(path, minimum_size=size)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            self._quarantine(path, exc)
            return
        while offset + _HEADER.size <= size:
            magic, version, kind, key_len, val_len, crc = _HEADER.unpack_from(
                buffer, offset
            )
            if magic != _MAGIC:
                self._quarantine(
                    path,
                    ValueError(
                        f"bad record magic {magic!r} at offset {offset}"
                    ),
                )
                return
            if version != _VERSION:
                # A segment from a different format version is ignored
                # wholesale (evolution, not corruption).
                self._scanned[path] = size
                return
            payload_start = offset + _HEADER.size
            payload_end = payload_start + key_len + val_len
            if payload_end > size:
                break  # in-flight sibling append; resume next refresh
            payload = bytes(buffer[payload_start:payload_end])
            if zlib.crc32(payload) != crc:
                self._quarantine(
                    path,
                    ValueError(f"CRC mismatch at offset {offset}"),
                )
                return
            if kind in _KNOWN_KINDS:
                try:
                    key = pickle.loads(payload[:key_len])
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    self._quarantine(path, exc)
                    return
                # First writer wins; later duplicates (two processes
                # missing, then both storing) resolve identically
                # everywhere because segment scan order is sorted.
                self._index.setdefault(
                    (kind, key),
                    (path, payload_start + key_len, val_len),
                )
            offset = payload_end
        self._scanned[path] = offset

    def _view(self, path: str, minimum_size: int = 0):
        """A read mmap of ``path``, re-mapped when the file has grown."""
        cached = self._maps.get(path)
        if cached is not None and cached[1] >= minimum_size:
            return cached[0]
        size = os.path.getsize(path)
        if cached is not None:
            cached[0].close()
            del self._maps[path]
        with open(path, "rb") as handle:
            view = mmap.mmap(handle.fileno(), size, access=mmap.ACCESS_READ)
        self._maps[path] = (view, size)
        return view

    # -- self-healing ---------------------------------------------------------

    def _quarantine(self, path: str, exc: Exception) -> None:
        """Drop a bad segment: rename it aside, forget its entries, warn.

        Mirrors ``MappingCache._quarantine_corrupt`` — corruption costs
        the bad segment's entries (re-computed as ordinary misses), never
        the campaign.
        """
        cached = self._maps.pop(path, None)
        if cached is not None:
            cached[0].close()
        self._scanned.pop(path, None)
        self._dead.add(path)
        for entry_key in [
            entry_key
            for entry_key, (entry_path, _o, _l) in self._index.items()
            if entry_path == path
        ]:
            del self._index[entry_key]
        if path == self._own_path:
            # Restart appends in a fresh segment; the old offsets are
            # meaningless once the file has been renamed aside.
            if self._own_handle is not None:
                self._own_handle.close()
                self._own_handle = None
            self._own_size = 0
            self._own_path = os.path.join(
                self.directory,
                f"plane-{os.getpid()}-{uuid.uuid4().hex[:8]}"
                f"{_SEGMENT_SUFFIX}",
            )
        corrupt_path: Optional[str] = path + _CORRUPT_SUFFIX
        try:
            os.replace(path, corrupt_path)
        except OSError:
            corrupt_path = None
        self.stats.segments_quarantined += 1
        error = CacheCorruptionError(
            f"cache-plane segment is corrupt: {type(exc).__name__}: {exc}",
            path=str(path),
            quarantined_to=corrupt_path,
        )
        warnings.warn(
            f"{error}; continuing without this segment",
            RuntimeWarning,
            stacklevel=4,
        )
