"""Shared layer-level mapping cache with an exact and a re-score tier.

The hot path of every figure and table is the per-layer mapping search:
each design-point evaluation runs one search per unique layer, and
neighbouring candidates in a DSE walk share most of their
mapping-relevant configuration.  This module memoizes those searches at
layer granularity, below the :class:`repro.cost.evaluator.CostEvaluator`
design-point cache:

* **Exact tier** — keyed by ``(mapper signature, layer signature, full
  config signature)``; a hit returns the stored
  :class:`~repro.mapping.mapper.MappingResult` unchanged.
* **Re-score tier** — keyed with the bandwidth/clock fields removed
  (:func:`repro.perf.signature.search_invariant_signature`); a hit
  re-scores the recorded :class:`~repro.mapping.mapper.SearchTrace` via
  :func:`repro.mapping.mapper.rescore_trace`, which is bit-identical to
  a cold search.  Sweeps over off-chip bandwidth therefore never repeat
  the candidate enumeration or the per-candidate latency model.

Both tiers are LRU-bounded and thread-safe; an optional pickle backend
(:meth:`MappingCache.save` / ``persist_path``) lets repeated experiment
runs warm-start (``REPRO_MAPPING_CACHE_DIR``).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.arch.accelerator import AcceleratorConfig
from repro.resilience.errors import CacheCorruptionError, as_repro_error
from repro.resilience.fault_injection import inject
from repro.perf.cache_plane import KIND_RESULT, KIND_TRACE, CachePlane
from repro.perf.knobs import cache_plane_dir
from repro.perf.signature import (
    config_signature,
    layer_signature,
    mapper_signature,
    search_invariant_signature,
    supports_tracing,
)
from repro.workloads.layers import LayerShape

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle:
    # repro.mapping.mapper -> repro.cost -> repro.perf -> this module)
    from repro.mapping.mapper import MappingResult, SearchTrace

__all__ = ["CacheStats", "MappingCache", "CachingMapper", "shared_cache"]

#: Persistence file name inside ``REPRO_MAPPING_CACHE_DIR``.
PERSIST_FILENAME = "mapping_cache.pkl"
#: On-disk format version; bump when signatures or traces change shape.
PERSIST_VERSION = 1


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`MappingCache`."""

    exact_hits: int = 0
    rescore_hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.exact_hits + self.rescore_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a full search."""
        total = self.lookups
        return (self.exact_hits + self.rescore_hits) / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "exact_hits": self.exact_hits,
            "rescore_hits": self.rescore_hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.exact_hits = self.rescore_hits = self.misses = 0


class MappingCache:
    """LRU-bounded two-tier store of mapping-search outcomes.

    Args:
        max_results: Exact-tier capacity (one ``MappingResult`` each).
        max_traces: Re-score-tier capacity; traces hold up to ``top_n``
            ``(mapping, execution)`` pairs, so this tier is kept small.
        persist_path: Pickle file to warm-start from (loaded when it
            exists) and to :meth:`save` to.
        plane: Optional cross-process :class:`CachePlane`; both tiers
            write through to it and consult it on local misses, so
            concurrently running processes share search outcomes.
    """

    def __init__(
        self,
        max_results: Optional[int] = None,
        max_traces: Optional[int] = None,
        persist_path: Optional[str] = None,
        plane: Optional[CachePlane] = None,
    ):
        self.max_results = (
            _env_int("REPRO_MAPPING_CACHE_RESULTS", 32768)
            if max_results is None
            else max_results
        )
        self.max_traces = (
            _env_int("REPRO_MAPPING_CACHE_TRACES", 1024)
            if max_traces is None
            else max_traces
        )
        self.persist_path = persist_path
        self.plane = plane
        self._results: "OrderedDict[Tuple, MappingResult]" = OrderedDict()
        self._traces: "OrderedDict[Tuple, SearchTrace]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()
        if persist_path and os.path.exists(persist_path):
            self.load(persist_path)

    # -- tier access ----------------------------------------------------------

    def get_result(self, key: Tuple) -> Optional[MappingResult]:
        with self._lock:
            result = self._results.get(key)
            if result is not None:
                self._results.move_to_end(key)
                return result
        if self.plane is not None:
            result = self.plane.get(KIND_RESULT, key)
            if result is not None:
                self._put_result_local(key, result)
                return result
        return None

    def put_result(self, key: Tuple, result: MappingResult) -> None:
        self._put_result_local(key, result)
        if self.plane is not None:
            self.plane.put(KIND_RESULT, key, result)

    def _put_result_local(self, key: Tuple, result: MappingResult) -> None:
        with self._lock:
            self._results[key] = result
            self._results.move_to_end(key)
            while len(self._results) > self.max_results:
                self._results.popitem(last=False)

    def get_trace(self, key: Tuple) -> Optional[SearchTrace]:
        with self._lock:
            trace = self._traces.get(key)
            if trace is not None:
                self._traces.move_to_end(key)
                return trace
        if self.plane is not None:
            trace = self.plane.get(KIND_TRACE, key)
            if trace is not None:
                self._put_trace_local(key, trace)
                return trace
        return None

    def put_trace(self, key: Tuple, trace: SearchTrace) -> None:
        self._put_trace_local(key, trace)
        if self.plane is not None:
            self.plane.put(KIND_TRACE, key, trace)

    def _put_trace_local(self, key: Tuple, trace: SearchTrace) -> None:
        with self._lock:
            self._traces[key] = trace
            self._traces.move_to_end(key)
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)

    # -- introspection --------------------------------------------------------

    def size(self) -> int:
        """Exact-tier entry count."""
        return len(self._results)

    def trace_count(self) -> int:
        """Re-score-tier entry count."""
        return len(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._results.clear()
            self._traces.clear()
            self.stats.reset()

    # -- persistence ----------------------------------------------------------

    def save(self, path: Optional[str] = None) -> str:
        """Pickle both tiers atomically; returns the written path."""
        path = path or self.persist_path
        if not path:
            raise ValueError("no persistence path configured")
        inject("cache-save", key=str(path))
        payload = {
            "version": PERSIST_VERSION,
            "results": dict(self._results),
            "traces": dict(self._traces),
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load(self, path: Optional[str] = None) -> bool:
        """Merge a pickled cache in; returns False on any load problem.

        Self-healing: a truncated/corrupt warm-start file is treated as a
        cold miss — it is quarantined to ``<path>.corrupt`` (so the next
        run does not trip over it and the evidence survives for
        inspection), a one-line :class:`CacheCorruptionError` warning is
        emitted, and the cache starts cold.  A file with a stale
        ``PERSIST_VERSION`` is simply ignored (format evolution, not
        corruption).
        """
        path = path or self.persist_path
        if not path or not os.path.exists(path):
            return False
        try:
            inject("cache-load", key=str(path))
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            self._quarantine_corrupt(path, exc)
            return False
        if (
            not isinstance(payload, dict)
            or payload.get("version") != PERSIST_VERSION
        ):
            return False
        try:
            for key, result in payload.get("results", {}).items():
                self.put_result(key, result)
            for key, trace in payload.get("traces", {}).items():
                self.put_trace(key, trace)
        except Exception as exc:
            self._quarantine_corrupt(path, exc)
            return False
        return True

    def _quarantine_corrupt(self, path: str, exc: Exception) -> None:
        """Move an unreadable cache file aside and warn once about it."""
        corrupt_path: Optional[str] = str(path) + ".corrupt"
        try:
            os.replace(path, corrupt_path)
        except OSError:
            corrupt_path = None
        error = CacheCorruptionError(
            "mapping-cache warm-start file is corrupt: "
            f"{type(exc).__name__}: {exc}",
            path=str(path),
            quarantined_to=corrupt_path,
        )
        warnings.warn(
            f"{error}; continuing with a cold cache",
            RuntimeWarning,
            stacklevel=3,
        )


class CachingMapper:
    """Drop-in mapper wrapper backed by a :class:`MappingCache`.

    Satisfies the ``Mapper`` protocol of ``CostEvaluator`` while serving
    repeated (layer, config) searches from the cache.  Keeps local
    counters (independent of the possibly shared cache's global stats)
    so each evaluator can report its own hit-rate.
    """

    def __init__(self, mapper, cache: Optional[MappingCache] = None):
        if not supports_tracing(mapper):
            raise TypeError(
                f"{mapper!r} does not implement the traced-search protocol "
                "(signature() + search_with_trace())"
            )
        self.mapper = mapper
        self.cache = cache if cache is not None else shared_cache()
        self._mapper_sig = mapper_signature(mapper)
        self._include_name = bool(
            getattr(mapper, "cache_layer_name_relevant", True)
        )
        self.objective = getattr(mapper, "objective", "latency")
        self.exact_hits = 0
        self.rescore_hits = 0
        self.misses = 0

    @property
    def name(self) -> str:
        return getattr(self.mapper, "name", type(self.mapper).__name__)

    def reset_counters(self) -> None:
        self.exact_hits = self.rescore_hits = self.misses = 0

    def _keys(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> Tuple[Tuple, Tuple]:
        lsig = layer_signature(layer, include_name=self._include_name)
        return (
            (self._mapper_sig, lsig, config_signature(config)),
            (self._mapper_sig, lsig, search_invariant_signature(config)),
        )

    def lookup(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> Optional[MappingResult]:
        """Serve from the cache, or return None (counting nothing)."""
        exact_key, trace_key = self._keys(layer, config)
        result = self.cache.get_result(exact_key)
        if result is not None:
            self.exact_hits += 1
            self.cache.stats.exact_hits += 1
            return result
        trace = self.cache.get_trace(trace_key)
        if trace is not None:
            from repro.mapping.mapper import rescore_trace

            result = rescore_trace(layer, config, trace, self.objective)
            self.cache.put_result(exact_key, result)
            self.rescore_hits += 1
            self.cache.stats.rescore_hits += 1
            return result
        return None

    def store(
        self,
        layer: LayerShape,
        config: AcceleratorConfig,
        result: MappingResult,
        trace: Optional[SearchTrace] = None,
    ) -> None:
        """Insert an externally computed search outcome (e.g. one a
        worker process returned)."""
        exact_key, trace_key = self._keys(layer, config)
        self.cache.put_result(exact_key, result)
        if trace is not None:
            self.cache.put_trace(trace_key, trace)

    def __call__(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> MappingResult:
        result = self.lookup(layer, config)
        if result is not None:
            return result
        self.misses += 1
        self.cache.stats.misses += 1
        result, trace = self.mapper.search_with_trace(layer, config)
        self.store(layer, config, result, trace)
        return result


_SHARED: Optional[MappingCache] = None
_SHARED_LOCK = threading.Lock()


def shared_cache() -> MappingCache:
    """The process-wide mapping cache shared by all evaluators.

    Created lazily; when ``REPRO_MAPPING_CACHE_DIR`` is set the cache
    warm-starts from (and registers an atexit save to)
    ``$REPRO_MAPPING_CACHE_DIR/mapping_cache.pkl``.  When
    ``REPRO_CACHE_PLANE`` names a directory, a cross-process
    :class:`CachePlane` is attached below both tiers so concurrently
    running processes share search outcomes live.
    """
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None:
            persist_dir = os.environ.get("REPRO_MAPPING_CACHE_DIR")
            persist_path = (
                os.path.join(persist_dir, PERSIST_FILENAME)
                if persist_dir
                else None
            )
            plane_dir = cache_plane_dir()
            plane = CachePlane(plane_dir) if plane_dir else None
            _SHARED = MappingCache(persist_path=persist_path, plane=plane)
            if persist_path:
                import atexit

                def _save_on_exit(cache: MappingCache = _SHARED) -> None:
                    try:
                        cache.save()
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        error = as_repro_error(
                            exc,
                            "mapping-cache persistence failed",
                            path=cache.persist_path,
                        )
                        warnings.warn(
                            f"{error}; cache not persisted",
                            RuntimeWarning,
                        )

                atexit.register(_save_on_exit)
        return _SHARED
