"""Persistent shared-memory worker fleet for sharded fused evaluation.

The fused cross-layer path (:mod:`repro.cost.fused`) collapses a whole
campaign step into one SoA block — but PR 6 still evaluates that block
on one core, and the ``REPRO_JOBS`` process pool pays per-task pickling
of candidate payloads plus cold workers that re-import and re-derive
warm state on every campaign.  This module scales the block across
cores without either cost:

* the parent materializes the block's int64/bool arrays **once** into a
  POSIX shared-memory segment (``multiprocessing.shared_memory``);
* long-lived workers attach **zero-copy** and each evaluates a
  contiguous candidate-range shard with the unchanged
  :class:`~repro.cost.fused.FusedBlockEvaluation` kernels (the kernels
  are row-elementwise, so shard rows are bitwise equal to full-block
  rows), writing per-row latency / feasibility / infeasibility-code
  decision arrays into a shared output segment;
* the parent copies the decision arrays out and selects winners itself
  (:class:`~repro.cost.fused.ShardedBlockEvaluation`), so results are
  **bit-identical** to the single-process fused path regardless of
  worker count or scheduling.

Workers are *warm*: they survive across steps and across campaigns,
keeping imports, compiled bottleneck trees, ``greedy_tile_counts``
memos, and cache-plane attachments resident, so a steady-state dispatch
costs one small pipe message per shard instead of pickling candidate
arrays.  Supervision follows the resilience layer's contract
(:class:`~repro.resilience.supervisor.ShardSupervisor` +
:class:`~repro.resilience.supervisor.RetryPolicy`): ``REPRO_TASK_TIMEOUT``
bounds each shard, a crashed or timed-out worker is killed and its
shard resubmitted to a sibling after deterministic backoff, an
exhausted retry budget evaluates the shard serially in the parent, and
any fleet-level failure falls back to the inline fused evaluation with
a warning — an unhealthy fleet can slow a campaign down but never
change its results or crash it.

Segment hygiene: the parent owns every segment's lifecycle —
``close()`` + ``unlink()`` in a ``finally`` and an ``atexit`` sweep for
anything a mid-evaluation exception leaves behind — while workers only
ever ``close()`` their attachments.  With the single resource tracker a
``multiprocessing`` tree shares, attach-side registrations coalesce
with the parent's create-side registration, so the parent's ``unlink``
leaves the tracker clean and interpreter shutdown prints no leaked
shared-memory warnings even after a worker was SIGKILLed mid-shard
(``tests/test_shm_fleet.py`` greps a subprocess's stderr for exactly
that).

Gated behind ``REPRO_SHM_EVAL`` (:mod:`repro.perf.knobs`), shard count
``REPRO_FUSED_SHARDS`` (default: the resolved ``REPRO_JOBS``), adaptive
sizing via ``REPRO_SHM_MIN_ROWS`` — blocks smaller than one shard's
worth of rows stay in-process.
"""

from __future__ import annotations

import atexit
import gc
import multiprocessing
import struct
import time
import warnings
from collections import deque
from multiprocessing import connection, shared_memory
from types import SimpleNamespace
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.resilience.supervisor import RetryPolicy, ShardSupervisor
from repro.workloads.layers import LOOP_DIMS

__all__ = ["FleetStats", "ShmFleet", "shared_fleet"]

# -- segment framing -----------------------------------------------------------
#
# Each segment starts with a 16-byte header (magic, layout version, row
# count) so a worker can reject a truncated or mismatched segment before
# touching its arrays; fields follow at 8-byte-aligned offsets in a
# fixed order, deterministic in the row count alone.

_MAGIC = b"RSHM"
_VERSION = 1
_HEADER = struct.Struct("<4sIQ")

#: (name, dtype, columns) of the input block arrays, in layout order.
#: Names match ``FusedCandidateBlock`` attributes so the parent writes
#: and the worker's duck-typed row view reads by the same keys.
_IN_FIELDS: Tuple[Tuple[str, type, int], ...] = (
    ("dram", np.int64, len(LOOP_DIMS)),
    ("spm", np.int64, len(LOOP_DIMS)),
    ("spatial", np.int64, len(LOOP_DIMS)),
    ("rf", np.int64, len(LOOP_DIMS)),
    ("dram_code", np.int64, 1),
    ("spm_code", np.int64, 1),
    ("stride", np.int64, 1),
    ("opcode", np.int64, 1),
    ("macs", np.int64, 1),
    ("dwise", np.bool_, 1),
)

#: Per-row decision arrays the workers write back.
_OUT_FIELDS: Tuple[Tuple[str, type, int], ...] = (
    ("latency", np.float64, 1),
    ("fail_code", np.int64, 1),
    ("feasible", np.bool_, 1),
)


def _layout(
    fields: Tuple[Tuple[str, type, int], ...], n: int
) -> Tuple[Dict[str, Tuple[int, type, int]], int]:
    """Field offsets and total byte size of a segment holding ``n`` rows."""
    offset = _HEADER.size
    table: Dict[str, Tuple[int, type, int]] = {}
    for name, dtype, ncols in fields:
        offset = (offset + 7) & ~7
        table[name] = (offset, dtype, ncols)
        offset += np.dtype(dtype).itemsize * n * ncols
    return table, offset


def _field_views(
    buf, fields: Tuple[Tuple[str, type, int], ...], n: int
) -> Dict[str, np.ndarray]:
    """Zero-copy array views over a segment buffer (caller must drop them
    before the segment can be closed)."""
    table, _total = _layout(fields, n)
    views: Dict[str, np.ndarray] = {}
    for name, (offset, dtype, ncols) in table.items():
        flat = np.frombuffer(buf, dtype=dtype, count=n * ncols, offset=offset)
        views[name] = flat.reshape(n, ncols) if ncols > 1 else flat
    return views


def _write_header(buf, n: int) -> None:
    _HEADER.pack_into(buf, 0, _MAGIC, _VERSION, n)


def _check_header(buf, n: int) -> None:
    magic, version, rows = _HEADER.unpack_from(buf, 0)
    if magic != _MAGIC or version != _VERSION or rows != n:
        raise RuntimeError(
            f"shared-memory segment header mismatch: magic={magic!r} "
            f"version={version} rows={rows}, expected {n} rows"
        )


# -- parent-side segment lifecycle --------------------------------------------

#: Segments created by this process and not yet destroyed; swept at
#: interpreter exit so an exception between create and the owning
#: ``finally`` cannot leak a /dev/shm file.
_LIVE_SEGMENTS: set = set()


def _create_segment(
    fields: Tuple[Tuple[str, type, int], ...], n: int
) -> shared_memory.SharedMemory:
    _table, total = _layout(fields, n)
    shm = shared_memory.SharedMemory(create=True, size=total)
    _write_header(shm.buf, n)
    _LIVE_SEGMENTS.add(shm)
    return shm


def _release_buffer(shm: shared_memory.SharedMemory) -> None:
    """close() tolerating straggler array views (collect, then retry)."""
    try:
        shm.close()
    except BufferError:
        gc.collect()
        try:
            shm.close()
        except BufferError:  # pragma: no cover - leak-proofing only
            pass


def _destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Parent-owned teardown: close the mapping and unlink the name
    (idempotent; a double destroy or an already-gone name is fine)."""
    _LIVE_SEGMENTS.discard(shm)
    _release_buffer(shm)
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def _sweep_segments() -> None:  # pragma: no cover - interpreter exit
    for shm in list(_LIVE_SEGMENTS):
        _destroy_segment(shm)


atexit.register(_sweep_segments)


def _write_block(shm: shared_memory.SharedMemory, block, n: int) -> None:
    """Copy the block's SoA arrays into the input segment.  Views are
    function-local so they are dropped before the caller can close."""
    views = _field_views(shm.buf, _IN_FIELDS, n)
    for name, view in views.items():
        view[:] = getattr(block, name)


def _read_outputs(
    shm: shared_memory.SharedMemory, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Copy the decision arrays out so the segment can be destroyed."""
    views = _field_views(shm.buf, _OUT_FIELDS, n)
    return (
        views["latency"].copy(),
        views["fail_code"].copy(),
        views["feasible"].copy(),
    )


# -- worker side ---------------------------------------------------------------


def _eval_range(in_shm, out_shm, n, start, stop, config, operators) -> None:
    """Evaluate rows ``start:stop`` with the fused kernels, writing the
    decision arrays in place.  All segment views are locals: they die on
    return, so the caller's ``close()`` never hits a BufferError."""
    from repro.cost.fused import FusedBlockEvaluation, _BlockRows

    _check_header(in_shm.buf, n)
    _check_header(out_shm.buf, n)
    source = SimpleNamespace(
        operators=operators, **_field_views(in_shm.buf, _IN_FIELDS, n)
    )
    evaluation = FusedBlockEvaluation(_BlockRows(source, start, stop), config)
    out = _field_views(out_shm.buf, _OUT_FIELDS, n)
    out["latency"][start:stop] = evaluation.latency
    out["fail_code"][start:stop] = evaluation.fail_code
    out["feasible"][start:stop] = evaluation.feasible


def _run_task(task) -> None:
    """One shard evaluation inside a worker process."""
    from repro.resilience.fault_injection import attempt_scope, inject

    (_kind, _seq, in_name, out_name, n, start, stop,
     attempt, config, operators) = task
    with attempt_scope(attempt, allow_kill=True):
        in_shm = shared_memory.SharedMemory(name=in_name)
        try:
            out_shm = shared_memory.SharedMemory(name=out_name)
            try:
                # Inject while both attachments are live: a ``kill``
                # fault here SIGKILLs a worker that is holding segment
                # mappings, the worst case for teardown hygiene.
                inject("shm", key=f"shard-{start}-{stop}")
                _eval_range(in_shm, out_shm, n, start, stop, config, operators)
            finally:
                _release_buffer(out_shm)
        finally:
            _release_buffer(in_shm)


def _worker_main(conn) -> None:
    """Long-lived worker loop: recv task, evaluate, reply.

    Replies are ``("ok", seq)`` or ``("err", seq, message)``; any
    exception — including injected crashes — becomes an ``err`` reply so
    the parent's supervisor decides resubmit vs serial fallback.  EOF or
    a ``None``/``"stop"`` sentinel ends the process.  Everything the
    worker imports or memoizes on the first task stays warm for the rest
    of its life.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None or task == "stop":
            return
        if isinstance(task, tuple) and task and task[0] == "ping":
            # Watchdog liveness probe: answer immediately, no evaluation.
            try:
                conn.send(("pong", task[1]))
            except (OSError, BrokenPipeError):
                return
            continue
        seq = task[1]
        try:
            _run_task(task)
            reply = ("ok", seq)
        except Exception as exc:
            reply = ("err", seq, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):  # parent went away
            return


# -- parent-side fleet ---------------------------------------------------------


class FleetStats:
    """Counters of the fleet's dispatch, warmth, and supervision activity.

    Plain attributes (like :class:`~repro.perf.instrumentation.BatchEvalStats`)
    so the evaluator can embed ``as_dict()`` into
    ``perf_summary()["shm_fleet"]``.
    """

    def __init__(self) -> None:
        self.blocks_sharded = 0
        self.blocks_inline = 0
        self.block_fallbacks = 0
        self.shards_dispatched = 0
        self.shard_resubmissions = 0
        self.shard_fallbacks = 0
        self.warm_hits = 0
        self.cold_spawns = 0
        self.worker_crashes = 0
        self.worker_timeouts = 0
        self.shm_bytes = 0
        self.shm_seconds = 0.0

    def reset(self) -> None:
        self.__init__()

    def as_dict(self) -> Dict[str, float]:
        return {
            "blocks_sharded": self.blocks_sharded,
            "blocks_inline": self.blocks_inline,
            "block_fallbacks": self.block_fallbacks,
            "shards_dispatched": self.shards_dispatched,
            "shard_resubmissions": self.shard_resubmissions,
            "shard_fallbacks": self.shard_fallbacks,
            "warm_hits": self.warm_hits,
            "cold_spawns": self.cold_spawns,
            "worker_crashes": self.worker_crashes,
            "worker_timeouts": self.worker_timeouts,
            "shm_bytes": self.shm_bytes,
            "shm_seconds": self.shm_seconds,
        }


class _Worker:
    __slots__ = ("process", "conn", "served")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.served = 0  # tasks dispatched to this worker so far

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ShmFleet:
    """A persistent, supervised set of shared-memory evaluation workers.

    One fleet per process (see :func:`shared_fleet`); workers are
    spawned on first use, reused across blocks, steps, and campaigns
    (``warm_hits``), pruned and respawned when they die.  The only
    public operation is :meth:`evaluate_block`, which either returns a
    :class:`~repro.cost.fused.ShardedBlockEvaluation` bit-identical to
    the inline fused evaluation, or ``None`` to decline (block too
    small, fleet unhealthy) — the caller then evaluates inline.
    """

    def __init__(self, ctx: Optional[multiprocessing.context.BaseContext] = None):
        self._ctx = ctx or multiprocessing.get_context()
        self._workers: List[_Worker] = []
        self._seq = 0
        self._spawned = 0
        #: Largest live fleet ever reached; the watchdog's respawn target.
        self._high_water = 0
        self.stats = FleetStats()

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self, stats: FleetStats) -> Optional[_Worker]:
        # Start the parent's resource tracker *before* forking so every
        # worker inherits it: attach-side registrations then coalesce
        # (set semantics) with the parent's create-side registration and
        # the parent's ``unlink`` leaves the tracker clean.  A worker
        # forked with no running tracker would lazily spawn its own,
        # which warns about "leaked" (parent-owned, already-unlinked)
        # segments when that worker exits.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platform-specific
            pass
        parent_conn, child_conn = self._ctx.Pipe()
        self._spawned += 1
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-shm-worker-{self._spawned}",
            daemon=True,
        )
        try:
            process.start()
        except OSError:
            parent_conn.close()
            child_conn.close()
            return None
        child_conn.close()
        stats.cold_spawns += 1
        worker = _Worker(process, parent_conn)
        self._workers.append(worker)
        return worker

    def ensure(self, count: int, stats: Optional[FleetStats] = None) -> int:
        """Prune dead workers and grow the fleet to ``count`` live ones
        (best effort — returns the live count actually reached)."""
        stats = stats if stats is not None else self.stats
        for worker in list(self._workers):
            if not worker.alive:
                self._discard(worker)
        while len(self._workers) < count:
            if self._spawn(stats) is None:
                break
        self._high_water = max(self._high_water, len(self._workers))
        return len(self._workers)

    def health(self) -> Dict[str, int]:
        """A passive fleet-health snapshot (no pruning, no respawns)."""
        return {
            "workers": len(self._workers),
            "workers_live": sum(1 for w in self._workers if w.alive),
            "high_water": self._high_water,
            "spawned_total": self._spawned,
        }

    def heartbeat(self, ping_timeout: float = 1.0) -> Dict[str, int]:
        """Active watchdog pass: prune dead workers, kill wedged ones,
        respawn back to the fleet's high-water size.

        A worker is *wedged* when it holds no in-flight shard (the fleet
        is strictly idle between blocks) yet fails to answer a ping
        within ``ping_timeout`` — any reply counts as alive.  Returns
        the :meth:`health` snapshot plus ``pruned`` / ``wedged`` /
        ``respawned`` counts; callers (the campaign service runs this
        between scheduler slices) surface them as SLO counters.
        """
        pruned = 0
        for worker in list(self._workers):
            if not worker.alive:
                self._discard(worker)
                pruned += 1
        pinged = []
        for worker in list(self._workers):
            self._seq += 1
            try:
                worker.conn.send(("ping", self._seq))
                pinged.append(worker)
            except (OSError, BrokenPipeError):
                self._discard(worker)
                pruned += 1
        wedged = 0
        deadline = time.monotonic() + max(0.0, ping_timeout)
        for worker in pinged:
            remaining = max(0.0, deadline - time.monotonic())
            alive = False
            try:
                if worker.conn.poll(remaining):
                    worker.conn.recv()
                    alive = True
            except (EOFError, OSError):
                alive = False
            if not alive:
                wedged += 1
                self._kill_worker(worker)
        respawned = 0
        while len(self._workers) < self._high_water:
            if self._spawn(self.stats) is None:
                break
            respawned += 1
        health = self.health()
        health.update(pruned=pruned, wedged=wedged, respawned=respawned)
        return health

    def _discard(self, worker: _Worker) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=1.0)

    def _kill_worker(self, worker: _Worker) -> None:
        if worker.process.is_alive():
            worker.process.kill()
        self._discard(worker)

    def shutdown(self) -> None:
        """Stop every worker (idempotent; registered atexit for the
        shared fleet)."""
        for worker in list(self._workers):
            try:
                worker.conn.send(None)
            except (OSError, BrokenPipeError):
                pass
            worker.process.join(timeout=0.5)
            self._discard(worker)
        self._workers = []

    def __len__(self) -> int:
        return len(self._workers)

    # -- evaluation -----------------------------------------------------------

    def evaluate_block(
        self,
        block,
        config,
        shards: Optional[int] = None,
        min_rows: Optional[int] = None,
        stats: Optional[FleetStats] = None,
    ):
        """Shard ``block`` over the fleet, or decline with ``None``.

        Adaptive sizing: the shard count is capped so every shard holds
        at least ``min_rows`` rows; a block smaller than two shards'
        worth evaluates inline (``blocks_inline``).  Any fleet-level
        failure — spawn failure, segment trouble — warns and declines
        (``block_fallbacks``): the campaign result can never depend on
        fleet health.
        """
        from repro.perf.knobs import fused_shards, shm_min_shard_rows

        stats = stats if stats is not None else self.stats
        shards = fused_shards(shards)
        min_rows = shm_min_shard_rows(min_rows)
        n = len(block)
        k = min(shards, max(1, n // min_rows))
        if k <= 1:
            stats.blocks_inline += 1
            return None
        started = time.perf_counter()
        try:
            evaluation = self._evaluate_sharded(block, config, k, stats)
        except Exception as exc:
            warnings.warn(
                f"shared-memory sharded evaluation failed ({exc}); "
                "evaluating the fused block in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            stats.block_fallbacks += 1
            return None
        stats.blocks_sharded += 1
        stats.shm_seconds += time.perf_counter() - started
        return evaluation

    def _evaluate_sharded(self, block, config, k: int, stats: FleetStats):
        from repro.cost.fused import (
            FusedBlockEvaluation,
            ShardedBlockEvaluation,
            _BlockRows,
        )

        n = len(block)
        policy = RetryPolicy.from_env()
        supervisor = ShardSupervisor(policy)
        bounds = [i * n // k for i in range(k + 1)]
        shards = [(i, bounds[i], bounds[i + 1]) for i in range(k)]

        in_shm = _create_segment(_IN_FIELDS, n)
        out_shm = _create_segment(_OUT_FIELDS, n)
        try:
            _write_block(in_shm, block, n)
            stats.shm_bytes += in_shm.size + out_shm.size
            self.ensure(k, stats)
            if not self._workers:
                raise RuntimeError("no fleet workers could be spawned")

            pending: Deque[Tuple[int, int, int]] = deque(shards)
            fallback: List[Tuple[int, int, int]] = []
            done_by_worker: set = set()
            #: conn -> (worker, shard, seq, deadline)
            busy: Dict[object, Tuple[_Worker, Tuple[int, int, int], int,
                                     Optional[float]]] = {}
            remaining = {index for index, _start, _stop in shards}

            def resolve_failure(shard: Tuple[int, int, int]) -> None:
                index, start, stop = shard
                decision = supervisor.record_failure(
                    index, f"shm-shard-{start}-{stop}"
                )
                if decision == ShardSupervisor.RESUBMIT:
                    stats.shard_resubmissions += 1
                    pending.append(shard)
                else:
                    stats.shard_fallbacks += 1
                    fallback.append(shard)
                    remaining.discard(index)

            def dispatch(worker: _Worker, shard: Tuple[int, int, int]) -> None:
                index, start, stop = shard
                self._seq += 1
                task = (
                    "eval", self._seq, in_shm.name, out_shm.name, n,
                    start, stop, supervisor.attempt(index), config,
                    block.operators,
                )
                if worker.served:
                    stats.warm_hits += 1
                worker.served += 1
                try:
                    worker.conn.send(task)
                except (OSError, BrokenPipeError):
                    stats.worker_crashes += 1
                    self._kill_worker(worker)
                    resolve_failure(shard)
                    return
                stats.shards_dispatched += 1
                deadline = (
                    time.monotonic() + policy.task_timeout
                    if policy.task_timeout
                    else None
                )
                busy[worker.conn] = (worker, shard, self._seq, deadline)

            while remaining:
                busy_workers = {entry[0] for entry in busy.values()}
                idle = [
                    w for w in self._workers
                    if w not in busy_workers and w.alive
                ]
                while pending and idle:
                    dispatch(idle.pop(0), pending.popleft())
                if pending and not busy:
                    # Every worker is gone; one respawn round, then give
                    # the rest to the serial path.
                    if self.ensure(min(k, len(pending)), stats) == 0:
                        while pending:
                            shard = pending.popleft()
                            stats.shard_fallbacks += 1
                            fallback.append(shard)
                            remaining.discard(shard[0])
                    continue
                if not busy:
                    break  # everything resolved
                timeout = None
                now = time.monotonic()
                deadlines = [
                    entry[3] for entry in busy.values()
                    if entry[3] is not None
                ]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - now)
                ready = connection.wait(list(busy.keys()), timeout)
                now = time.monotonic()
                if not ready:
                    for conn, entry in list(busy.items()):
                        worker, shard, _seq, deadline = entry
                        if deadline is not None and now >= deadline:
                            stats.worker_timeouts += 1
                            del busy[conn]
                            self._kill_worker(worker)
                            resolve_failure(shard)
                    continue
                for conn in ready:
                    entry = busy.pop(conn, None)
                    if entry is None:
                        continue
                    worker, shard, seq, _deadline = entry
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError):
                        stats.worker_crashes += 1
                        self._kill_worker(worker)
                        resolve_failure(shard)
                        continue
                    if reply[0] == "ok" and reply[1] == seq:
                        done_by_worker.add(shard[0])
                        remaining.discard(shard[0])
                    else:
                        # The worker survived but the shard failed
                        # (injected crash, framing mismatch): it stays
                        # in the fleet; the shard goes to the retry
                        # ledger.
                        stats.worker_crashes += 1
                        resolve_failure(shard)

            latency, fail_code, feasible = _read_outputs(out_shm, n)
            # Every shard a worker did not confirm — explicit fallbacks
            # plus anything a defensive loop exit left behind — gets the
            # in-parent serial evaluation, so the decision arrays are
            # complete no matter how the fleet misbehaved.
            for index, start, stop in shards:
                if index in done_by_worker:
                    continue
                view = FusedBlockEvaluation(
                    _BlockRows(block, start, stop), config
                )
                latency[start:stop] = view.latency
                fail_code[start:stop] = view.fail_code
                feasible[start:stop] = view.feasible
            return ShardedBlockEvaluation(
                block, config, latency, fail_code, feasible
            )
        finally:
            _destroy_segment(in_shm)
            _destroy_segment(out_shm)


_SHARED: Optional[ShmFleet] = None


def shared_fleet() -> ShmFleet:
    """The process-wide fleet singleton (spawned lazily, shut down
    atexit).  Sharing one fleet across evaluators is what makes the
    workers *warm*: a second campaign in the same process dispatches to
    already-running workers."""
    global _SHARED
    if _SHARED is None:
        _SHARED = ShmFleet()
        atexit.register(_SHARED.shutdown)
    return _SHARED
