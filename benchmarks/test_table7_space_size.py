"""Benchmark for Table 7: mapping-space size analysis.

Paper claim: per-layer mapping spaces hold up to O(10^36) configurations;
factorization cuts them to O(10^10)-O(10^21) and reuse-aware ordering
pruning to O(10^9)-O(10^15).  Shape checks: the pruning cascade is
monotone for every model and GEMM layers keep 3 (vs 15) orderings.
"""

from __future__ import annotations

from repro.experiments import table7


def test_table7_space_size(benchmark):
    result = benchmark.pedantic(
        lambda: table7.run(samples=100),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    assert len(result.rows) == 11
    for model, size in result.rows.items():
        assert size.tile_sizings_log10 >= size.valid_factor_tilings_log10
        assert size.full_space_log10 >= size.factor_space_log10
        assert size.factor_space_log10 >= size.reuse_aware_space_log10
        if size.hw_valid_tilings_log10 is not None:
            assert (
                size.hw_valid_tilings_log10
                <= size.valid_factor_tilings_log10
            )
    assert result.rows["transformer"].unique_reuse_orderings == 3
    assert result.rows["resnet18"].unique_reuse_orderings == 15
    # The biggest spaces reach the paper's magnitudes.
    assert max(s.full_space_log10 for s in result.rows.values()) >= 28
