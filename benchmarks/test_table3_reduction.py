"""Benchmark for Table 3: per-attempt objective reduction.

Paper claim: Explainable-DSE reduces the objective by ~30% per acquisition
attempt vs ~1.4% (sometimes negative progress) for non-explainable
techniques.  Shape check: Explainable-DSE's average reduction is at least
that of every baseline with a defined value.
"""

from __future__ import annotations

from repro.experiments import table3


def test_table3_reduction(benchmark, comparison_runner, bench_models):
    result = benchmark.pedantic(
        lambda: table3.run(comparison_runner, models=bench_models),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    explainable = result.average("ExplainableDSE-Codesign")
    assert explainable is not None and explainable > 0
    for technique in result.reduction:
        if technique.startswith("ExplainableDSE"):
            continue
        baseline = result.average(technique)
        if baseline is not None:
            assert explainable >= baseline - 0.02, (technique, baseline)
