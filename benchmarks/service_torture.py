"""Crash-recovery torture: SIGKILL the service at every fault site.

The deterministic fault plan (``REPRO_FAULT_INJECT`` with ``step=N``
kill specs, no randomness) murders the *server process* at each of the
four service-layer fault sites in turn — after the submission record is
spooled (``submit``), just before a response is written
(``http-response``), between scheduler slices (``slice``), and during
state persistence (``spool-write``) — restarting it on the same spool
every time::

    PYTHONPATH=src python benchmarks/service_torture.py --out BENCH_torture.json

After the kills, a fault-free server drains everything and the record
asserts:

1. Every campaign reaches a terminal status and its result fingerprint
   **and** canonical journal equal an uninterrupted solo
   ``ExplainableDSE.run()`` reference.
2. The idempotent re-submits across kills never created a duplicate
   campaign (one spool directory per idempotency key).
3. A campaign submitted with an impossibly small deadline settles as
   ``expired`` and, after an extension, finishes with the straight-run
   fingerprint.
4. A campaign that only ever ran under the fault-free server produces a
   journal *byte-identical* to its solo reference (the service is
   invisible, not just equivalent).

Artifacts (kill schedule, statuses, journals, server logs) are copied
next to ``--out`` for CI upload.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import (  # noqa: E402
    ServiceClient,
    ServiceClientError,
)
from repro.service.machine import result_fingerprint  # noqa: E402
from repro.service.service import (  # noqa: E402
    CampaignSpec,
    default_campaign_factory,
)
from repro.telemetry import JsonlSink, Tracer  # noqa: E402
from repro.verify.differential import _canonical_journal  # noqa: E402

#: Campaigns driven through the kills (idempotency key "torture-<i>").
CAMPAIGNS = [
    {"model": "resnet18", "tenant": "alice", "iterations": 16, "top_n": 40},
    {"model": "mobilenetv2", "tenant": "bob", "iterations": 16, "top_n": 40},
    {"model": "resnet18", "tenant": "bob", "iterations": 16, "top_n": 40},
]
#: Submitted only under the fault-free server: its journal must be
#: byte-identical to the solo reference.
BYTE_LEG = {
    "model": "mobilenetv2", "tenant": "alice", "iterations": 12, "top_n": 40,
}
#: Submitted with an impossibly small deadline, expired, then extended.
DEADLINE_LEG = {
    "model": "resnet18", "tenant": "alice", "iterations": 12, "top_n": 40,
}

#: The deterministic kill schedule: one server incarnation per site.
KILL_SCHEDULE = [
    {"phase": "submit", "inject": "kill:submit:step=1"},
    {"phase": "http-response", "inject": "kill:http-response:step=1"},
    {"phase": "slice", "inject": "kill:slice:step=6"},
    {"phase": "spool-write", "inject": "kill:spool-write:step=6"},
]

_LISTENING = re.compile(r"service listening on http://([\d.]+):(\d+)")


def _env(fault_inject=None):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env.pop("REPRO_FAULT_INJECT", None)
    if fault_inject:
        env["REPRO_FAULT_INJECT"] = fault_inject
    return env


def _start_server(
    spool: Path,
    log_path: Path,
    fault_inject=None,
    timeout: float = 60.0,
    retries: int = 0,
):
    """Launch ``repro serve`` (optionally with a fault plan) and wait
    for its listening line; returns ``(process, client)``."""
    log = open(log_path, "w")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--spool", str(spool), "--port", "0", "--quantum", "1",
        ],
        env=_env(fault_inject),
        stdout=log,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        match = _LISTENING.search(log_path.read_text())
        if match:
            client = ServiceClient(
                f"http://{match.group(1)}:{match.group(2)}",
                retries=retries,
            )
            return proc, client
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited before listening:\n{log_path.read_text()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError(f"server never listened:\n{log_path.read_text()}")


def _await_kill(proc, timeout: float = 600.0) -> int:
    """Wait for the injected SIGKILL to land; returns the exit code."""
    try:
        return proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        raise RuntimeError("server outlived its kill schedule")


def _try_submit(client, overrides, key, **kwargs):
    """Submit tolerant of the server dying mid-request: the idempotency
    key makes the replay safe in the next incarnation."""
    try:
        return client.submit(
            dict(overrides), idempotency_key=key, **kwargs
        )
    except ServiceClientError:
        return None


def _solo_references(workdir: Path) -> dict:
    """(fingerprint, raw journal bytes, canonical journal) per distinct
    spec, keyed by (model, iterations, top_n)."""
    references = {}
    for overrides in CAMPAIGNS + [BYTE_LEG, DEADLINE_LEG]:
        key = (
            overrides["model"], overrides["iterations"], overrides["top_n"]
        )
        if key in references:
            continue
        journal = workdir / ("solo-%s-%d.jsonl" % (key[0], key[1]))
        tracer = Tracer(JsonlSink(journal))
        result = default_campaign_factory(
            CampaignSpec.from_dict(overrides)
        ).run(tracer=tracer)
        tracer.close()
        references[key] = (
            result_fingerprint(result),
            journal.read_bytes(),
            _canonical_journal(journal),
        )
    return references


def _ref_of(references, overrides):
    return references[
        (overrides["model"], overrides["iterations"], overrides["top_n"])
    ]


def run(workdir: Path, artifacts: Path) -> dict:
    spool = workdir / "spool"
    artifacts.mkdir(parents=True, exist_ok=True)
    record = {
        "benchmark": "service_torture",
        "python": platform.python_version(),
        "campaigns": CAMPAIGNS,
        "kill_schedule": KILL_SCHEDULE,
        "checks": [],
        "phases": [],
    }
    (artifacts / "kill_schedule.json").write_text(
        json.dumps(KILL_SCHEDULE, indent=2)
    )

    def check(name: str, ok: bool, detail: str = "") -> None:
        record["checks"].append(
            {"name": name, "ok": bool(ok), "detail": detail}
        )
        print(
            f"[{'ok' if ok else 'FAIL'}] {name}"
            + (f": {detail}" if detail else "")
        )

    t0 = time.time()
    references = _solo_references(workdir)
    record["solo_seconds"] = round(time.time() - t0, 2)

    ids = {}

    for phase_no, entry in enumerate(KILL_SCHEDULE):
        phase = entry["phase"]
        log_path = artifacts / f"server-{phase_no}-{phase}.log"
        proc, client = _start_server(spool, log_path, entry["inject"])
        phase_record = {"phase": phase, "inject": entry["inject"]}
        # Every phase (idempotently) re-submits every campaign: whichever
        # submits the previous incarnation's death swallowed are replayed
        # here, and the dedup path must hand back the same campaign.
        for index, overrides in enumerate(CAMPAIGNS):
            campaign_id = _try_submit(client, overrides, f"torture-{index}")
            if campaign_id is not None:
                previous = ids.get(index)
                if previous is not None and previous != campaign_id:
                    check(
                        f"phase {phase}: idempotent replay of torture-"
                        f"{index} returned {campaign_id}, expected "
                        f"{previous}",
                        False,
                    )
                ids[index] = campaign_id
        exit_code = _await_kill(proc)
        phase_record["exit_code"] = exit_code
        record["phases"].append(phase_record)
        check(
            f"phase {phase}: injected kill landed (SIGKILL)",
            exit_code == -signal.SIGKILL,
            f"exit={exit_code}",
        )

    spec_dirs = sorted(
        p.name for p in spool.iterdir() if (p / "spec.json").is_file()
    )
    check(
        "idempotent re-submits created no duplicate campaigns",
        len(spec_dirs) <= len(CAMPAIGNS),
        f"{len(spec_dirs)} campaign dirs after {len(KILL_SCHEDULE)} kills",
    )

    # -- fault-free drain -----------------------------------------------------
    proc, client = _start_server(
        spool, artifacts / "server-final.log", retries=2
    )
    try:
        for index, overrides in enumerate(CAMPAIGNS):
            ids[index] = client.submit(
                dict(overrides), idempotency_key=f"torture-{index}"
            )
        byte_id = client.submit(
            dict(BYTE_LEG), idempotency_key="torture-byte-leg"
        )
        deadline_id = client.submit(
            dict(DEADLINE_LEG),
            idempotency_key="torture-deadline-leg",
            deadline_s=1e-6,
        )

        finals = {
            index: client.wait(cid, timeout=900)
            for index, cid in ids.items()
        }
        record["final_statuses"] = {
            cid: finals[index]["status"] for index, cid in ids.items()
        }
        check(
            "all tortured campaigns finish after the fault-free restart",
            all(f["status"] == "finished" for f in finals.values()),
            str(record["final_statuses"]),
        )

        mismatches = []
        for index, cid in ids.items():
            if finals[index]["status"] != "finished":
                continue
            expected_fp, _raw, expected_canonical = _ref_of(
                references, CAMPAIGNS[index]
            )
            if client.result(cid)["fingerprint"] != expected_fp:
                mismatches.append(f"{cid}: fingerprint")
            journal = spool / cid / "journal.jsonl"
            if _canonical_journal(journal) != expected_canonical:
                mismatches.append(f"{cid}: journal")
        record["mismatches"] = mismatches
        check(
            "fingerprints and canonical journals equal solo references",
            not mismatches,
            "; ".join(mismatches) or "all equal",
        )

        # Deadline leg: expire, extend, finish with the straight-run
        # fingerprint (bit-identical resume from the forced checkpoint).
        expired = client.wait(deadline_id, timeout=900)
        check(
            "deadline leg settles as expired",
            expired["status"] == "expired",
            expired["status"],
        )
        client.extend_deadline(deadline_id, 3600.0)
        deadline_final = client.wait(deadline_id, timeout=900)
        expected_fp, _raw, expected_canonical = _ref_of(
            references, DEADLINE_LEG
        )
        deadline_ok = (
            deadline_final["status"] == "finished"
            and client.result(deadline_id)["fingerprint"] == expected_fp
            and _canonical_journal(spool / deadline_id / "journal.jsonl")
            == expected_canonical
        )
        check(
            "expired-then-extended campaign matches the straight run",
            deadline_ok,
            deadline_final["status"],
        )

        # Byte leg: never interrupted, so the service must be invisible
        # down to the raw journal bytes.
        byte_final = client.wait(byte_id, timeout=900)
        _fp, expected_raw, _canonical = _ref_of(references, BYTE_LEG)
        byte_journal = spool / byte_id / "journal.jsonl"
        check(
            "fault-free campaign journal is byte-identical to solo",
            byte_final["status"] == "finished"
            and byte_journal.read_bytes() == expected_raw,
            byte_final["status"],
        )

        record["healthz"] = client.healthz()
        settled = {**ids, "byte": byte_id, "deadline": deadline_id}
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            record["final_server_exit"] = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            record["final_server_exit"] = proc.wait()

    # -- artifacts -----------------------------------------------------------
    for cid in settled.values():
        campaign_dir = spool / cid
        target = artifacts / cid
        target.mkdir(exist_ok=True)
        for name in ("spec.json", "state.json", "journal.jsonl"):
            source = campaign_dir / name
            if source.exists():
                shutil.copy2(source, target / name)
    (artifacts / "statuses.json").write_text(
        json.dumps(record["final_statuses"], indent=2)
    )

    record["ok"] = all(c["ok"] for c in record["checks"])
    record["seconds"] = round(time.time() - t0, 2)
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_torture.json")
    parser.add_argument(
        "--artifacts",
        default="service-torture-artifacts",
        help="directory for CI-uploadable kill schedule/journals/logs",
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="service-torture-") as tmp:
        record = run(Path(tmp), Path(args.artifacts))
    Path(args.out).write_text(json.dumps(record, indent=2))
    print(f"wrote {args.out} (ok={record['ok']}, {record['seconds']}s)")
    return 0 if record["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
