"""Benchmark for Fig. 4: the two-parameter toy walkthrough.

Paper claim: on the (PEs, L2 size) toy space for a ResNet CONV5_2 layer,
Explainable-DSE first scales PEs (computation bottleneck), then memory and
bandwidth resources (DMA bottleneck), reaching the efficient corner in a
handful of acquisitions, while HyperMapper keeps sampling inefficient
points.  Shape checks: the explainable trajectory improves latency
monotonically in best-so-far terms and ends at or below HyperMapper's.
"""

from __future__ import annotations

from repro.experiments import fig4


def test_fig4_toy_walkthrough(benchmark):
    result = benchmark.pedantic(
        lambda: fig4.run(iterations=20, top_n=80),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    explainable_latencies = [step[2] for step in result.explainable_path]
    hypermapper_latencies = [step[2] for step in result.hypermapper_path]
    assert min(explainable_latencies) < explainable_latencies[0]
    assert min(explainable_latencies) <= min(hypermapper_latencies) * 1.25

    # The first mitigation should touch the PE count (computation is the
    # initial bottleneck at (64 PEs, 64 kB)), visible as a PE increase
    # within the first few acquisitions.
    early_pes = [step[0] for step in result.explainable_path[:4]]
    assert max(early_pes) > early_pes[0]
