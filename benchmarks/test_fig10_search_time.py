"""Benchmark for Fig. 10: search time and evaluated designs.

Paper claim: Explainable-DSE converges after ~54-59 evaluated designs
(vs ~2500 for the baselines), cutting search time 53x / 103x on average.
Shape check: Explainable-DSE evaluates no more designs than the budget
and, on average, no more than the black-box techniques consume.
"""

from __future__ import annotations

from repro.experiments import fig10


def test_fig10_search_time(benchmark, comparison_runner, bench_models):
    result = benchmark.pedantic(
        lambda: fig10.run(comparison_runner, models=bench_models),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    means = result.mean_evaluations()
    explainable = means["ExplainableDSE-Codesign"]
    assert explainable <= comparison_runner.iterations
    baseline_mean = max(
        v for k, v in means.items() if not k.startswith("ExplainableDSE")
    )
    # Baselines run the budget out; Explainable-DSE may terminate early.
    assert explainable <= baseline_mean + 1
