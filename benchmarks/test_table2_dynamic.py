"""Benchmark for Table 2: dynamic (short-budget) DSE latencies.

Paper claim: under a 100-iteration budget, non-explainable techniques
mostly fail to find feasible designs ('-'/'-*' cells) while Explainable-DSE
lands solutions one to two orders of magnitude faster.  Shape check:
Explainable-DSE has at least as many feasible cells as every baseline.
"""

from __future__ import annotations

from repro.experiments import table2


def test_table2_dynamic(benchmark, comparison_runner, bench_models):
    result = benchmark.pedantic(
        lambda: table2.run(comparison_runner, models=bench_models),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    feasible_cells = {
        technique: sum(1 for ok in row.values() if ok)
        for technique, row in result.met_all.items()
    }
    explainable = feasible_cells["ExplainableDSE-Codesign"]
    assert explainable >= max(
        count
        for technique, count in feasible_cells.items()
        if technique != "ExplainableDSE-Codesign"
    ), feasible_cells
