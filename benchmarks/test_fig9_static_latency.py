"""Benchmark for Fig. 9: best feasible latency per technique per model.

Paper claim: Explainable-DSE codesigns reach ~6x lower latency than the
non-explainable techniques on average (1.77x with the dataflow fixed for
everyone).  Shape checks: Explainable-DSE finds feasible designs for at
least as many models as any baseline, and its geomean latency is no worse
than the baselines' on the commonly-feasible models.
"""

from __future__ import annotations

import math

from repro.experiments import fig9
from repro.experiments.harness import PAPER_TECHNIQUES


def test_fig9_static_latency(benchmark, comparison_runner, bench_models):
    result = benchmark.pedantic(
        lambda: fig9.run(comparison_runner, models=bench_models),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    feasible_counts = {
        technique: sum(
            1 for v in row.values() if math.isfinite(v)
        )
        for technique, row in result.latency_ms.items()
    }
    explainable = feasible_counts[fig9.REFERENCE_TECHNIQUE]
    assert explainable >= max(
        count
        for technique, count in feasible_counts.items()
        if technique != fig9.REFERENCE_TECHNIQUE
    ), feasible_counts

    for spec in PAPER_TECHNIQUES:
        if spec.label == fig9.REFERENCE_TECHNIQUE:
            continue
        ratio = result.geomean_speedup_over(spec.label)
        if math.isfinite(ratio):
            # Explainable-DSE should not lose by more than 25% to any
            # baseline at these scaled-down budgets (the paper reports it
            # winning by 1.77-6x at full budgets).
            assert ratio > 0.75, (spec.label, ratio)
