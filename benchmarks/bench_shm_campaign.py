"""CI benchmark: shm-sharded fused evaluation vs the single-process fused path.

Builds one large fused candidate block (a cold full-model TopNMapper
step over every EfficientNet-B0 layer) and evaluates it twice: inline
with :class:`~repro.cost.fused.FusedBlockEvaluation` on one core, and
sharded over the persistent shared-memory worker fleet
(``REPRO_SHM_EVAL``) at ``WORKERS`` shards.  Block construction is
excluded from both timings — the benchmark isolates exactly the work
the fleet parallelizes.  Results must be bit-identical; timings go to a
JSON artifact so CI runs can be compared over time::

    PYTHONPATH=src python benchmarks/bench_shm_campaign.py --out BENCH_shm.json

The acceptance floor (sharded >= 2x over inline fused at 4 workers) is
only enforced when the machine actually has >= 4 CPU cores
(``floor_enforced`` in the artifact records the decision) — a 1-core
container can verify identity and the chaos ladder but cannot speed
anything up.

A chaos case rides along (``--chaos``, on by default, ``--chaos-only``
for the chaos job): ``REPRO_FAULT_INJECT=kill:shm:1.0:match=shard-0-``
SIGKILLs the worker holding shard 0 on every attempt — while it holds
live segment attachments — and the campaign result must still be
bit-identical after the resubmission ladder drains into the serial
fallback.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import platform
import time

import numpy as np

from repro.arch import build_edge_design_space, config_from_point
from repro.cost.fused import FusedBlockEvaluation
from repro.mapping.batch_candidates import CandidateBatch, FusedCandidateBlock
from repro.mapping.mapper import TopNMapper
from repro.perf.shm_fleet import FleetStats, ShmFleet
from repro.workloads import load_workload

MODEL = "efficientnetb0"
TOP_N = 3000
MAX_SPATIAL = 64
WORKERS = 4
REPS = 3
MIN_SPEEDUP = 2.0


def _mid_point():
    point = build_edge_design_space().minimum_point()
    point.update(
        pes=1024,
        l1_bytes=256,
        l2_kb=512,
        offchip_bw_mbps=8192,
        noc_datawidth=128,
    )
    for op in ("I", "W", "O", "PSUM"):
        point[f"phys_unicast_{op}"] = 16
        point[f"virt_unicast_{op}"] = 64
    return point


def _build_block(workload, config):
    """One campaign step's SoA block (construction is not timed)."""
    mapper = TopNMapper(top_n=TOP_N, max_spatial=MAX_SPATIAL)
    batches = []
    for layer in workload.layers:
        candidates, budget = mapper.candidate_plan(layer, config)
        batches.append(
            CandidateBatch.from_specs(itertools.islice(candidates, budget))
        )
    return FusedCandidateBlock.from_layer_batches(
        list(workload.layers), batches
    )


def _inline_eval(block, config):
    best = float("inf")
    evaluation = None
    for _ in range(REPS):
        start = time.perf_counter()
        run = FusedBlockEvaluation(block, config)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, evaluation = elapsed, run
    return best, evaluation


def _sharded_eval(fleet, block, config, stats):
    best = float("inf")
    evaluation = None
    # Warm the fleet outside the timed region: CI measures steady-state
    # dispatch (the campaign reuses workers across steps), not fork cost.
    fleet.ensure(WORKERS, stats)
    for _ in range(REPS):
        start = time.perf_counter()
        run = fleet.evaluate_block(
            block, config, shards=WORKERS, min_rows=1, stats=stats
        )
        elapsed = time.perf_counter() - start
        if run is None:
            raise RuntimeError("fleet declined the benchmark block")
        if elapsed < best:
            best, evaluation = elapsed, run
    return best, evaluation


def _identical(inline, sharded):
    return (
        np.array_equal(inline.latency, sharded.latency)
        and np.array_equal(inline.fail_code, sharded.fail_code)
        and np.array_equal(inline.feasible, sharded.feasible)
    )


def _fleet_chaos(block, config) -> dict:
    """SIGKILL the shard-0 worker on every attempt mid-step; the
    resubmission ladder plus serial fallback must keep the decision
    arrays bit-identical to the inline evaluation."""
    inline = FusedBlockEvaluation(block, config)
    saved = {
        name: os.environ.get(name)
        for name in ("REPRO_FAULT_INJECT", "REPRO_RETRY_BACKOFF")
    }
    os.environ["REPRO_FAULT_INJECT"] = "kill:shm:1.0:match=shard-0-"
    os.environ["REPRO_RETRY_BACKOFF"] = "0.001"
    try:
        fleet = ShmFleet()
        stats = FleetStats()
        try:
            sharded = fleet.evaluate_block(
                block, config, shards=WORKERS, min_rows=1, stats=stats
            )
        finally:
            fleet.shutdown()
    finally:
        for name, old in saved.items():
            if old is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = old
    return {
        "worker_crashes": stats.worker_crashes,
        "shard_resubmissions": stats.shard_resubmissions,
        "shard_fallbacks": stats.shard_fallbacks,
        "results_identical": sharded is not None
        and _identical(inline, sharded),
    }


def run(chaos: bool = True, chaos_only: bool = False) -> dict:
    workload = load_workload(MODEL)
    config = config_from_point(_mid_point())
    block = _build_block(workload, config)

    if chaos_only:
        return {
            "benchmark": "shm_campaign_fleet_chaos",
            "model": MODEL,
            "top_n": TOP_N,
            "layers": len(workload.layers),
            "candidates": len(block),
            "python": platform.python_version(),
            "fleet_chaos": _fleet_chaos(block, config),
        }

    cpu_count = os.cpu_count() or 1
    inline_seconds, inline = _inline_eval(block, config)
    fleet = ShmFleet()
    stats = FleetStats()
    try:
        sharded_seconds, sharded = _sharded_eval(fleet, block, config, stats)
    finally:
        fleet.shutdown()

    record = {
        "benchmark": "shm_campaign",
        "model": MODEL,
        "top_n": TOP_N,
        "layers": len(workload.layers),
        "candidates": len(block),
        "reps": REPS,
        "workers": WORKERS,
        "cpu_count": cpu_count,
        "python": platform.python_version(),
        "inline_seconds": round(inline_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "speedup": round(inline_seconds / sharded_seconds, 2),
        "min_speedup": MIN_SPEEDUP,
        "floor_enforced": cpu_count >= WORKERS,
        "shards_dispatched": stats.shards_dispatched,
        "warm_hits": stats.warm_hits,
        "shm_bytes": stats.shm_bytes,
        "results_identical": _identical(inline, sharded),
    }
    if chaos:
        record["fleet_chaos"] = _fleet_chaos(block, config)
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="BENCH_shm.json",
        help="JSON artifact path (default: %(default)s)",
    )
    parser.add_argument(
        "--no-chaos",
        action="store_true",
        help="skip the SIGKILLed-worker case",
    )
    parser.add_argument(
        "--chaos-only",
        action="store_true",
        help="run only the SIGKILLed-worker case (no timing floor)",
    )
    args = parser.parse_args()
    record = run(chaos=not args.no_chaos, chaos_only=args.chaos_only)
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    chaos = record.get("fleet_chaos")
    if args.chaos_only:
        print(
            f"{record['model']}: fleet chaos: crashes="
            f"{chaos['worker_crashes']}, resubmissions="
            f"{chaos['shard_resubmissions']}, identical="
            f"{chaos['results_identical']} -> {args.out}"
        )
        return (
            0
            if chaos["worker_crashes"] >= 1 and chaos["results_identical"]
            else 1
        )
    print(
        f"{record['model']}: inline {record['inline_seconds']}s, "
        f"sharded {record['sharded_seconds']}s ({record['speedup']}x at "
        f"{WORKERS} workers, floor {MIN_SPEEDUP}x "
        f"{'enforced' if record['floor_enforced'] else 'waived: '+str(record['cpu_count'])+' cores'}), "
        f"results identical: {record['results_identical']}"
        + (
            f"; fleet chaos: crashes={chaos['worker_crashes']}, "
            f"identical={chaos['results_identical']}"
            if chaos
            else ""
        )
        + f" -> {args.out}"
    )
    if not record["results_identical"]:
        return 1
    if chaos and not (
        chaos["worker_crashes"] >= 1 and chaos["results_identical"]
    ):
        return 1
    if record["floor_enforced"] and record["speedup"] < MIN_SPEEDUP:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
