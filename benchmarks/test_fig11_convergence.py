"""Benchmark for Fig. 11: latency-vs-iteration convergence curves.

Paper claim: for EfficientNet and Transformer, Explainable-DSE reduces the
objective at almost every acquisition attempt and converges within tens of
iterations to solutions 2.1-35x better than the black-box curves.
Shape checks: the explainable codesign curve ends feasible and at or below
the black-box codesign curves (with slack for the scaled budget).
"""

from __future__ import annotations

import math

from repro.experiments import fig11


def test_fig11_convergence(benchmark, comparison_runner):
    result = benchmark.pedantic(
        lambda: fig11.run(comparison_runner),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    for model in fig11.FIG11_MODELS:
        explainable = result.final_latency(model, "ExplainableDSE-Codesign")
        assert math.isfinite(explainable), model
        for technique in (
            "Random Search-Codesign",
            "HyperMapper 2.0-Codesign",
        ):
            other = result.final_latency(model, technique)
            if math.isfinite(other):
                assert explainable <= other * 1.5, (model, technique)

        # Convergence curves are best-so-far, hence non-increasing.
        for technique, series in result.trajectories[model].items():
            finite = [v for v in series if math.isfinite(v)]
            assert all(a >= b for a, b in zip(finite, finite[1:])), technique
