"""Benchmark for Fig. 3: DSE effectiveness on EfficientNetB0.

Paper claim: for the EfficientNetB0 edge exploration, non-explainable
DSEs produce solutions up to 35x slower, with 18-52% feasibility (area and
power only) and hours-to-days search times, while Explainable-DSE converges
in minutes.  Shape check: Explainable-DSE's best latency is the lowest (or
within slack) and it uses no more evaluations than the baselines.
"""

from __future__ import annotations

import math

from repro.experiments import fig3


def test_fig3_effectiveness(benchmark, comparison_runner):
    result = benchmark.pedantic(
        lambda: fig3.run(comparison_runner),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    explainable = result.rows["ExplainableDSE-Codesign"]
    assert math.isfinite(explainable["best latency (ms)"])
    best_baseline = min(
        row["best latency (ms)"]
        for technique, row in result.rows.items()
        if not technique.startswith("ExplainableDSE")
    )
    if math.isfinite(best_baseline):
        assert explainable["best latency (ms)"] <= best_baseline * 1.5
    assert explainable["evaluations"] <= comparison_runner.iterations
