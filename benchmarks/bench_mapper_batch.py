"""CI smoke benchmark: scalar vs. vectorized candidate-scoring throughput.

Runs the full-model TopNMapper search (every ResNet18 layer, cold — no
mapping cache) once through the scalar reference evaluator and once
through the vectorized batch kernels, checks the results are
bit-identical, and writes candidates/second for both paths to a JSON
artifact so CI runs can be compared over time::

    PYTHONPATH=src python benchmarks/bench_mapper_batch.py \
        --out BENCH_mapper.json

Exits non-zero if results diverge or the batch path is *slower* than the
scalar path (a loose regression guard; the >= 3x acceptance floor lives
in :mod:`benchmarks.test_perf_mapper_batch`).
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.arch import build_edge_design_space, config_from_point
from repro.mapping.mapper import TopNMapper
from repro.workloads import load_workload

MODEL = "resnet18"
TOP_N = 150
REPS = 3


def _mid_config():
    point = build_edge_design_space().minimum_point()
    point.update(
        pes=1024,
        l1_bytes=256,
        l2_kb=512,
        offchip_bw_mbps=8192,
        noc_datawidth=128,
    )
    for op in ("I", "W", "O", "PSUM"):
        point[f"phys_unicast_{op}"] = 16
        point[f"virt_unicast_{op}"] = 64
    return config_from_point(point)


def _sweep(workload, config, batch_eval):
    """Best-of-REPS cold full-model search; returns (seconds, results, stats)."""
    best_seconds = float("inf")
    results = None
    stats = None
    for _ in range(REPS):
        mapper = TopNMapper(top_n=TOP_N, batch_eval=batch_eval)
        start = time.perf_counter()
        run = [mapper(layer, config) for layer in workload.layers]
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds = elapsed
            results = run
            stats = mapper.batch_stats
    return best_seconds, results, stats


def _identical(a, b):
    return (
        a.mapping == b.mapping
        and a.execution == b.execution
        and a.candidates_evaluated == b.candidates_evaluated
        and a.feasible_candidates == b.feasible_candidates
    )


def run() -> dict:
    workload = load_workload(MODEL)
    config = _mid_config()

    scalar_seconds, scalar_results, scalar_stats = _sweep(
        workload, config, batch_eval=False
    )
    batch_seconds, batch_results, batch_stats = _sweep(
        workload, config, batch_eval=True
    )
    identical = all(
        _identical(a, b) for a, b in zip(scalar_results, batch_results)
    )
    candidates = scalar_stats.scalar_candidates

    return {
        "benchmark": "mapper_batch",
        "model": MODEL,
        "top_n": TOP_N,
        "layers": len(workload.layers),
        "reps": REPS,
        "python": platform.python_version(),
        "candidates": candidates,
        "scalar_seconds": round(scalar_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(scalar_seconds / batch_seconds, 2),
        "scalar_candidates_per_second": round(
            candidates / scalar_seconds, 1
        ),
        "batch_candidates_per_second": round(
            batch_stats.batch_candidates / batch_seconds, 1
        ),
        "int64_fallbacks": batch_stats.int64_fallbacks,
        "results_identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="BENCH_mapper.json",
        help="JSON artifact path (default: %(default)s)",
    )
    args = parser.parse_args()
    record = run()
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(
        f"{record['model']}: scalar {record['scalar_seconds']}s, "
        f"batch {record['batch_seconds']}s ({record['speedup']}x), "
        f"results identical: {record['results_identical']} -> {args.out}"
    )
    if not record["results_identical"]:
        return 1
    return 0 if record["speedup"] >= 1.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
