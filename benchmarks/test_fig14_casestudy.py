"""Benchmark for Fig. 14: DSE designs vs Edge TPU / Eyeriss.

Paper claim: DSE codesigns reach ~3.7x the Edge TPU's throughput and ~49x
its area efficiency on average (8.7x / 57x vs Eyeriss), with comparable
energy efficiency.  Shape checks: the DSE design wins on throughput for
most commonly-measured models, and wins on area efficiency on average
(our analytical area model allocates far smaller buffers, as the paper's
designs did).
"""

from __future__ import annotations

import math

from repro.experiments import fig14
from repro.experiments.setup import bench_scale


def test_fig14_casestudy(benchmark):
    iterations = max(20, int(60 * bench_scale()))
    result = benchmark.pedantic(
        lambda: fig14.run(iterations=iterations, top_n=60),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    tpu_ratio = result.geomean_throughput_ratio("edge-tpu")
    eyeriss_ratio = result.geomean_throughput_ratio("eyeriss")
    print(f"geomean throughput vs edge-tpu: {tpu_ratio:.2f}x")
    print(f"geomean throughput vs eyeriss:  {eyeriss_ratio:.2f}x")
    # The paper reports 3.7x / 8.7x; any finite advantage >= ~1x preserves
    # the qualitative claim at scaled-down budgets.
    if math.isfinite(eyeriss_ratio):
        assert eyeriss_ratio > 1.0
