"""CI smoke test: SIGTERM a traced campaign, resume it, same result.

Drives the full crash-recovery story end-to-end through the CLI, with a
real process kill (not an in-process exception)::

    PYTHONPATH=src python benchmarks/resume_smoke.py --out BENCH_resume.json

1. Run an uninterrupted reference campaign (``--save``).
2. Start the same campaign with ``--trace`` in a subprocess, poll its
   checkpoint until enough budget is consumed, and SIGTERM it.
3. Resume with ``--resume`` and assert the resumed result (trial points,
   costs, explanations, best point, evaluation count) matches the
   reference exactly, and that the stitched journal still renders a
   report.

If the campaign happens to finish before the kill lands (fast machine),
the record says so and the resume/equality checks still run.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _repro(*args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(),
        capture_output=True,
        text=True,
        **kwargs,
    )


def _load_result(path):
    with open(path) as handle:
        data = json.load(handle)
    return {
        "points": [t["point"] for t in data["trials"]],
        "costs": [t["costs"] for t in data["trials"]],
        "explanations": data["explanations"],
        "best_index": data["best_index"],
        "evaluations": data["evaluations"],
    }


def run(model: str, iterations: int, kill_after: int, workdir: Path) -> dict:
    journal = workdir / "run.jsonl"
    checkpoint = Path(str(journal) + ".ckpt")
    reference_json = workdir / "reference.json"
    resumed_json = workdir / "resumed.json"

    explore = ("explore", model, "--iterations", str(iterations))
    reference = _repro(*explore, "--save", str(reference_json))
    if reference.returncode not in (0, 1):
        raise RuntimeError(f"reference run failed:\n{reference.stderr}")

    victim = subprocess.Popen(
        [sys.executable, "-m", "repro", *explore, "--trace", str(journal)],
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    killed = False
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if victim.poll() is not None:
            break  # finished before the kill landed
        if checkpoint.exists():
            try:
                consumed = json.loads(checkpoint.read_text())["consumed"]
            except (json.JSONDecodeError, KeyError):
                consumed = 0  # raced the atomic replace; retry
            if consumed >= kill_after:
                victim.send_signal(signal.SIGTERM)
                killed = True
                break
        time.sleep(0.02)
    victim.wait(timeout=60)
    if not checkpoint.exists():
        raise RuntimeError("victim exited without writing a checkpoint")

    resumed = _repro(
        *explore, "--resume", str(journal), "--save", str(resumed_json)
    )
    if resumed.returncode not in (0, 1):
        raise RuntimeError(f"resume failed:\n{resumed.stderr}")
    report = _repro("report", str(journal))

    ref = _load_result(reference_json)
    res = _load_result(resumed_json)
    return {
        "benchmark": "resume_smoke",
        "model": model,
        "iterations": iterations,
        "python": platform.python_version(),
        "killed_by_sigterm": killed,
        "journal_events": sum(
            1 for line in journal.read_text().splitlines() if line
        ),
        "resumed_equals_reference": ref == res,
        "same_trials": ref["points"] == res["points"],
        "same_best": ref["best_index"] == res["best_index"],
        "same_evaluations": ref["evaluations"] == res["evaluations"],
        "report_renders": report.returncode == 0,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet18")
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument(
        "--kill-after", type=int, default=10,
        help="consumed-budget threshold at which SIGTERM is sent",
    )
    parser.add_argument(
        "--out",
        default="BENCH_resume.json",
        help="JSON artifact path (default: %(default)s)",
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="resume-smoke-") as tmp:
        record = run(
            args.model, args.iterations, args.kill_after, Path(tmp)
        )
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    ok = record["resumed_equals_reference"] and record["report_renders"]
    print(
        f"{record['model']}: killed={record['killed_by_sigterm']}, "
        f"resumed == reference: {record['resumed_equals_reference']}, "
        f"report renders: {record['report_renders']} -> {args.out}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
