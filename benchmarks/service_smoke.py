"""CI smoke test: the campaign service under churn, kill, and resume.

Drives the full service story end-to-end over the real HTTP API with a
real process kill (not an in-process stop)::

    PYTHONPATH=src python benchmarks/service_smoke.py --out BENCH_service.json

1. Compute solo ``ExplainableDSE.run()`` references (fingerprint +
   journal) in-process for every campaign spec the service will run.
2. Start ``repro serve`` in a subprocess and submit four campaigns as
   two tenants through :class:`~repro.service.client.ServiceClient`.
3. Cancel one campaign, wait for it to settle, then SIGTERM the server
   while the survivors are still mid-run.
4. Restart the server on the same spool, wait for every campaign, and
   assert each finished campaign's fingerprint **and** canonical
   journal match its solo reference — interleaving, tenancy, and a
   process death must all be invisible in the results.

If the survivors happen to finish before the kill lands (fast machine),
the record says so and the equality checks still run.  Artifacts
(statuses, journals, server logs) are copied next to ``--out`` for CI
upload.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.machine import result_fingerprint  # noqa: E402
from repro.service.service import (  # noqa: E402
    CampaignSpec,
    default_campaign_factory,
)
from repro.telemetry import JsonlSink, Tracer  # noqa: E402
from repro.verify.differential import _canonical_journal  # noqa: E402

#: Four campaigns as two tenants; the last one is the cancel victim.
CAMPAIGNS = [
    {"model": "resnet18", "tenant": "alice", "iterations": 36, "top_n": 40},
    {"model": "mobilenetv2", "tenant": "alice", "iterations": 36, "top_n": 40},
    {"model": "resnet18", "tenant": "bob", "iterations": 36, "top_n": 40},
    {"model": "mobilenetv2", "tenant": "bob", "iterations": 36, "top_n": 40},
]
VICTIM = 3

_LISTENING = re.compile(r"service listening on http://([\d.]+):(\d+)")


def _env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _start_server(spool: Path, log_path: Path, timeout: float = 60.0):
    """Launch ``repro serve`` and wait for its listening line.

    Returns ``(process, client)``.  The port is parsed from stdout —
    ``--port 0`` lets the OS pick a free one.
    """
    log = open(log_path, "w")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--spool",
            str(spool),
            "--port",
            "0",
            "--quantum",
            "1",
        ],
        env=_env(),
        stdout=log,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        match = _LISTENING.search(log_path.read_text())
        if match:
            return proc, ServiceClient(f"http://{match.group(1)}:{match.group(2)}")
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited before listening:\n{log_path.read_text()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError(f"server never listened:\n{log_path.read_text()}")


def _stop_server(proc) -> int:
    proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        return proc.wait()


def _solo_references(workdir: Path) -> dict:
    """Solo run() references keyed by campaign index: (fingerprint,
    canonical journal bytes).  Identical spec => identical campaign, so
    duplicate specs share one run."""
    references, by_spec = {}, {}
    for index, overrides in enumerate(CAMPAIGNS):
        key = json.dumps(overrides, sort_keys=True)
        if key not in by_spec:
            journal = workdir / f"solo-{index}.jsonl"
            tracer = Tracer(JsonlSink(journal))
            spec = CampaignSpec.from_dict(overrides)
            result = default_campaign_factory(spec).run(tracer=tracer)
            tracer.close()
            by_spec[key] = (
                result_fingerprint(result),
                _canonical_journal(journal),
            )
        references[index] = by_spec[key]
    return references


def run(workdir: Path, artifacts: Path) -> dict:
    spool = workdir / "spool"
    artifacts.mkdir(parents=True, exist_ok=True)
    record = {
        "benchmark": "service_smoke",
        "python": platform.python_version(),
        "campaigns": CAMPAIGNS,
        "checks": [],
    }

    def check(name: str, ok: bool, detail: str = "") -> None:
        record["checks"].append({"name": name, "ok": bool(ok), "detail": detail})
        print(f"[{'ok' if ok else 'FAIL'}] {name}" + (f": {detail}" if detail else ""))

    t0 = time.time()
    references = _solo_references(workdir)
    record["solo_seconds"] = round(time.time() - t0, 2)

    # -- phase 1: serve, submit 4 as 2 tenants, cancel one, SIGTERM ----------
    proc, client = _start_server(spool, artifacts / "server1.log")
    ids = {}
    try:
        for index, overrides in enumerate(CAMPAIGNS):
            ids[index] = client.submit(dict(overrides))
        victim_id = ids[VICTIM]
        client.cancel(victim_id)
        victim = client.wait(victim_id, timeout=120)
        check(
            "victim settles after cancel",
            victim["status"] in ("cancelled", "finished"),
            victim["status"],
        )
        record["victim_status_phase1"] = victim["status"]

        # SIGTERM once the survivors have made some progress but (on any
        # reasonable machine) have not all finished.
        keepers = [ids[i] for i in range(len(CAMPAIGNS)) if i != VICTIM]
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            statuses = [client.status(cid) for cid in keepers]
            progressed = sum(s["steps_done"] for s in statuses) >= 2
            unfinished = [s for s in statuses if s["status"] not in ("finished", "failed")]
            if progressed or not unfinished:
                break
            time.sleep(0.02)
        record["statuses_at_kill"] = {s["campaign_id"]: s["status"] for s in statuses}
        record["interrupted"] = bool(unfinished)
    finally:
        record["server1_exit"] = _stop_server(proc)
    check(
        "SIGTERM interrupted live campaigns",
        True,  # informational: a fast machine may legitimately finish first
        f"interrupted={record['interrupted']}",
    )

    # -- phase 2: restart on the same spool, everything settles --------------
    proc, client = _start_server(spool, artifacts / "server2.log")
    try:
        finals = {index: client.wait(cid, timeout=600) for index, cid in ids.items()}
        record["final_statuses"] = {
            cid: finals[index]["status"] for index, cid in ids.items()
        }
        keepers_ok = all(
            finals[i]["status"] == "finished" for i in range(len(CAMPAIGNS)) if i != VICTIM
        )
        check("all surviving campaigns finish after restart", keepers_ok,
              str(record["final_statuses"]))
        check(
            "victim state survives restart",
            finals[VICTIM]["status"] == record["victim_status_phase1"],
            finals[VICTIM]["status"],
        )

        mismatches = []
        for index, cid in ids.items():
            if finals[index]["status"] != "finished":
                continue
            expected_fp, expected_journal = references[index]
            if client.result(cid)["fingerprint"] != expected_fp:
                mismatches.append(f"{cid}: fingerprint")
            journal = spool / cid / "journal.jsonl"
            if _canonical_journal(journal) != expected_journal:
                mismatches.append(f"{cid}: journal")
        record["mismatches"] = mismatches
        check("fingerprints and journals match solo references",
              not mismatches, "; ".join(mismatches) or "all equal")
    finally:
        record["server2_exit"] = _stop_server(proc)

    # -- artifacts -----------------------------------------------------------
    for cid in ids.values():
        campaign_dir = spool / cid
        target = artifacts / cid
        target.mkdir(exist_ok=True)
        for name in ("spec.json", "state.json", "journal.jsonl"):
            source = campaign_dir / name
            if source.exists():
                shutil.copy2(source, target / name)
    (artifacts / "statuses.json").write_text(
        json.dumps(record["final_statuses"], indent=2)
    )

    record["ok"] = all(c["ok"] for c in record["checks"])
    record["seconds"] = round(time.time() - t0, 2)
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--artifacts",
        default="service-smoke-artifacts",
        help="directory for CI-uploadable statuses/journals/server logs",
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        record = run(Path(tmp), Path(args.artifacts))
    Path(args.out).write_text(json.dumps(record, indent=2))
    print(f"wrote {args.out} (ok={record['ok']}, {record['seconds']}s)")
    return 0 if record["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
