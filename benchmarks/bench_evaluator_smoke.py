"""CI smoke benchmark: evaluator throughput + mapping-cache speedup.

Runs a small ResNet18 bandwidth/PE sweep twice (cold vs. layer-cached)
and writes the numbers to a JSON artifact so CI runs can be compared over
time::

    PYTHONPATH=src python benchmarks/bench_evaluator_smoke.py \
        --out BENCH_evaluator.json

Smaller than :mod:`benchmarks.test_perf_evaluator` (the acceptance
benchmark) so it fits in the test-suite CI job; the JSON includes the
full ``CostEvaluator.perf_summary()`` of the warm run.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.arch.accelerator import OFFCHIP_BW_VALUES_MBPS, build_edge_design_space
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.perf import MappingCache
from repro.workloads import load_workload

MODEL = "resnet18"
TOP_N = 40
PES_VALUES = (512, 1024)
BW_VALUES = OFFCHIP_BW_VALUES_MBPS[:5]


def _base_point():
    point = build_edge_design_space().minimum_point()
    point.update(
        pes=1024,
        l1_bytes=256,
        l2_kb=512,
        offchip_bw_mbps=8192,
        noc_datawidth=128,
    )
    for op in ("I", "W", "O", "PSUM"):
        point[f"phys_unicast_{op}"] = 16
        point[f"virt_unicast_{op}"] = 64
    return point


def _sweep(evaluator, points):
    start = time.perf_counter()
    evaluations = [evaluator.evaluate(p) for p in points]
    return time.perf_counter() - start, evaluations


def run() -> dict:
    workload = load_workload(MODEL)
    base = _base_point()
    points = []
    for pes in PES_VALUES:
        for bw in BW_VALUES:
            point = dict(base)
            point["pes"] = pes
            point["offchip_bw_mbps"] = bw
            points.append(point)

    cold = CostEvaluator(
        workload, TopNMapper(top_n=TOP_N), use_mapping_cache=False
    )
    warm = CostEvaluator(
        workload, TopNMapper(top_n=TOP_N), mapping_cache=MappingCache()
    )
    cold_seconds, cold_evals = _sweep(cold, points)
    warm_seconds, warm_evals = _sweep(warm, points)
    identical = all(
        a.costs == b.costs for a, b in zip(cold_evals, warm_evals)
    )

    return {
        "benchmark": "evaluator_smoke",
        "model": MODEL,
        "top_n": TOP_N,
        "design_points": len(points),
        "python": platform.python_version(),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "cold_evals_per_second": round(len(points) / cold_seconds, 2),
        "warm_evals_per_second": round(len(points) / warm_seconds, 2),
        "costs_identical": identical,
        "warm_perf_summary": warm.perf_summary(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="BENCH_evaluator.json",
        help="JSON artifact path (default: %(default)s)",
    )
    args = parser.parse_args()
    record = run()
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(
        f"{record['model']}: cold {record['cold_seconds']}s, "
        f"warm {record['warm_seconds']}s ({record['speedup']}x), "
        f"costs identical: {record['costs_identical']} -> {args.out}"
    )
    return 0 if record["costs_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
