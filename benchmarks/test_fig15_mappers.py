"""Benchmark for Fig. 15: black-box mappers on ResNet18 layers.

Paper claim: random search reaches low-latency mappings for all layers
within seconds; simulated annealing fails to map some layers; the genetic
algorithm costs the most time; Bayesian optimization's per-trial overhead
is prohibitive.  Shape checks: random search maps every layer, and the
pruned top-N mapper is at least as good as the black-box mappers.
"""

from __future__ import annotations

import math

from repro.experiments import fig15
from repro.experiments.setup import bench_scale


def test_fig15_mappers(benchmark):
    trials = max(40, int(120 * bench_scale()))
    result = benchmark.pedantic(
        lambda: fig15.run(trials=trials, bo_trials=max(15, trials // 4)),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    random_total = result.total_latency("random")
    assert math.isfinite(random_total)  # random maps every layer

    topn_total = result.total_latency("top-n (dMazeRunner-like)")
    assert math.isfinite(topn_total)
    assert topn_total <= random_total * 1.2

    # BO's surrogate refits dominate its runtime per trial.
    bo_rate = result.seconds["bayesian"] / max(15, trials // 4)
    random_rate = result.seconds["random"] / trials
    assert bo_rate > random_rate
