"""Acceptance micro-benchmark for the layer-level mapping cache.

The workload the cache was built for: a DSE sweep over one
mapping-irrelevant parameter (off-chip bandwidth: 10 Table 1 values) and
one mapping-relevant parameter (PE count: 2 values) on ResNet18 — 20
design points whose per-layer searches overlap heavily.  The cached
evaluator must (a) produce bit-identical ``Evaluation.costs`` to the
cold evaluator on every point and (b) finish the sweep at least 2x
faster (measured ~9x: the bandwidth sweep re-scores recorded traces
instead of re-running the top-N search per layer).

``REPRO_JOBS=1`` (the default) keeps both runs serial, so the numbers
are reproducible run to run.
"""

from __future__ import annotations

import time

from repro.arch.accelerator import OFFCHIP_BW_VALUES_MBPS
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.perf import MappingCache

#: 2 mapping-relevant x 10 mapping-irrelevant values = 20 design points.
PES_VALUES = (512, 1024)
BW_VALUES = OFFCHIP_BW_VALUES_MBPS[:10]
TOP_N = 60
MIN_SPEEDUP = 2.0


def _sweep_points(base_point):
    points = []
    for pes in PES_VALUES:
        for bw in BW_VALUES:
            point = dict(base_point)
            point["pes"] = pes
            point["offchip_bw_mbps"] = bw
            points.append(point)
    return points


def _timed_sweep(evaluator, points):
    start = time.perf_counter()
    evaluations = [evaluator.evaluate(point) for point in points]
    return time.perf_counter() - start, evaluations


def test_mapping_cache_speedup_resnet18(resnet18_workload, mid_point):
    points = _sweep_points(mid_point)
    assert len(points) == 20

    cold = CostEvaluator(
        resnet18_workload, TopNMapper(top_n=TOP_N), use_mapping_cache=False
    )
    warm = CostEvaluator(
        resnet18_workload,
        TopNMapper(top_n=TOP_N),
        mapping_cache=MappingCache(),
    )

    cold_seconds, cold_evals = _timed_sweep(cold, points)
    warm_seconds, warm_evals = _timed_sweep(warm, points)

    # Correctness first: the cache must be invisible in the results.
    for a, b in zip(cold_evals, warm_evals):
        assert a.costs == b.costs
        assert a.mappable == b.mappable

    speedup = cold_seconds / warm_seconds
    summary = warm.perf_summary()["mapping_cache"]
    print(
        f"\ncold {cold_seconds:.2f}s, warm {warm_seconds:.2f}s "
        f"-> {speedup:.1f}x speedup "
        f"(hit rate {summary['hit_rate']:.0%}, "
        f"{summary['entries']} entries)"
    )
    assert warm.mapping_cache_hit_rate > 0.5
    assert speedup >= MIN_SPEEDUP, (
        f"mapping cache speedup {speedup:.2f}x below the {MIN_SPEEDUP}x "
        f"acceptance floor (cold {cold_seconds:.2f}s, warm {warm_seconds:.2f}s)"
    )
