"""Ablation benchmark for Explainable-DSE's design choices.

The paper motivates two design decisions qualitatively:

* §4.4(i): resolving multi-layer prediction conflicts with the *minimum*
  value — "choosing the maximum value can lead to faster convergence, but
  it can favor a single sub-function ... exploration can quickly exhaust
  the budget for constraints";
* §4.6: constraints-budget awareness when updating the solution — "avoid
  greedy optimization that chases marginal objective reduction".

This benchmark runs the ablated variants (max/mean aggregation;
budget-unaware updates) against the paper configuration and reports final
latency, feasibility, and evaluations used.  Shape check: the paper
configuration finds a feasible design wherever any variant does.
"""

from __future__ import annotations

import math

from repro.arch import build_edge_design_space
from repro.core.dse.explainable import ExplainableDSE
from repro.experiments.reporting import format_table
from repro.experiments.setup import (
    bench_scale,
    edge_constraints,
    make_evaluator,
)

VARIANTS = {
    "paper (min, budget-aware)": {},
    "max aggregation": {"aggregation_rule": "max"},
    "mean aggregation": {"aggregation_rule": "mean"},
    "budget-unaware update": {"budget_aware": False},
}

MODEL = "resnet18"


def _run_variant(iterations: int, **kwargs):
    evaluator = make_evaluator(MODEL, "codesign", top_n=60)
    dse = ExplainableDSE(
        build_edge_design_space(),
        evaluator,
        edge_constraints(MODEL),
        max_evaluations=iterations,
        **kwargs,
    )
    return dse.run()


def test_ablation_design_choices(benchmark):
    iterations = max(30, int(50 * bench_scale()))

    def run_all():
        return {
            name: _run_variant(iterations, **kwargs)
            for name, kwargs in VARIANTS.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {
        name: {
            "best latency (ms)": result.best_objective,
            "feasible (%)": result.feasibility_fraction() * 100,
            "evaluations": result.evaluations,
            "reduction/attempt (%)": result.per_attempt_reduction() * 100,
        }
        for name, result in results.items()
    }
    print()
    print(f"Ablation on {MODEL}, {iterations} evaluations:")
    print(format_table(rows, columns=list(next(iter(rows.values()))),
                       row_header="variant"))

    paper = results["paper (min, budget-aware)"]
    if any(r.found_feasible for r in results.values()):
        assert paper.found_feasible
    for result in results.values():
        assert result.evaluations <= iterations
