"""Benchmark for Fig. 12: feasibility of acquired solutions.

Paper claim: 87% of Explainable-DSE codesign acquisitions met area+power
(15% met all three constraints), vs ~15-50% (area+power) and ~0.1-0.6%
(all) for the black-box techniques.  Shape check: Explainable-DSE's
all-constraints feasibility fraction is the highest of all techniques.
"""

from __future__ import annotations

from repro.experiments import fig12


def test_fig12_feasibility(benchmark, comparison_runner, bench_models):
    result = benchmark.pedantic(
        lambda: fig12.run(comparison_runner, models=bench_models),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.format())

    means = result.mean_fractions()
    explainable = means["ExplainableDSE-Codesign"]["all constraints"]
    for technique, row in means.items():
        if technique.startswith("ExplainableDSE"):
            continue
        assert explainable >= row["all constraints"], technique
        # Fractions are probabilities.
        assert 0.0 <= row["area+power"] <= 1.0
        assert row["all constraints"] <= row["area+power"] + 1e-9
