"""Acceptance micro-benchmark for the vectorized batch candidate scoring.

The workload the kernels were built for: a *cold* full-model TopNMapper
search (every ResNet18 layer, no mapping cache — the case the
layer-level cache cannot help, e.g. the first visit to each design
point of a DSE run).  The batch path must (a) produce bit-identical
``MappingResult``s to the scalar reference on every layer and (b) finish
the sweep at least 3x faster (measured ~5-6x: candidate generation is
shared; the scoring loop itself vectorizes ~20x).

``REPRO_JOBS=1`` (the default) keeps both runs serial, so the numbers
are reproducible run to run.
"""

from __future__ import annotations

import time

from repro.arch import config_from_point
from repro.mapping.mapper import TopNMapper

TOP_N = 150
REPS = 3
MIN_SPEEDUP = 3.0


def _timed_sweep(workload, config, batch_eval):
    """Best-of-REPS cold search over every layer (fresh mapper per rep)."""
    best_seconds = float("inf")
    results = None
    for _ in range(REPS):
        mapper = TopNMapper(top_n=TOP_N, batch_eval=batch_eval)
        start = time.perf_counter()
        run = [mapper(layer, config) for layer in workload.layers]
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds, results = elapsed, run
    return best_seconds, results


def test_batch_eval_speedup_resnet18(resnet18_workload, mid_point):
    config = config_from_point(mid_point)

    scalar_seconds, scalar_results = _timed_sweep(
        resnet18_workload, config, batch_eval=False
    )
    batch_seconds, batch_results = _timed_sweep(
        resnet18_workload, config, batch_eval=True
    )

    # Correctness first: the vectorization must be invisible in the results.
    for a, b in zip(scalar_results, batch_results):
        assert a.mapping == b.mapping
        assert a.execution == b.execution
        assert a.candidates_evaluated == b.candidates_evaluated
        assert a.feasible_candidates == b.feasible_candidates

    speedup = scalar_seconds / batch_seconds
    print(
        f"\nscalar {scalar_seconds * 1e3:.1f}ms, "
        f"batch {batch_seconds * 1e3:.1f}ms -> {speedup:.1f}x speedup "
        f"({len(resnet18_workload.layers)} layers, top_n={TOP_N})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batch candidate scoring speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x acceptance floor (scalar {scalar_seconds:.3f}s, "
        f"batch {batch_seconds:.3f}s)"
    )
