"""Acceptance micro-benchmark for the fused cross-layer campaign step.

The workload the fused block was built for: one campaign step — a
*cold* full-model TopNMapper search over every ResNet18 layer — with
the per-layer batch kernels (the PR 2 fast path) as the reference.  The
fused path must (a) produce bit-identical ``MappingResult``s on every
layer and (b) finish the step at least 3x faster (measured ~4x: the
per-layer kernel invocations collapse into a handful of whole-campaign
array passes, and candidate generation is memoized in tuple domain).

``REPRO_JOBS=1`` (the default) keeps both runs serial, so the numbers
are reproducible run to run.
"""

from __future__ import annotations

import time

from repro.arch import config_from_point
from repro.cost.fused import search_layers_fused
from repro.mapping.mapper import TopNMapper

TOP_N = 150
REPS = 3
MIN_SPEEDUP = 3.0


def _timed_batch_sweep(workload, config):
    """Best-of-REPS per-layer batch search (fresh mapper per rep)."""
    best_seconds = float("inf")
    results = None
    for _ in range(REPS):
        mapper = TopNMapper(top_n=TOP_N, batch_eval=True)
        start = time.perf_counter()
        run = [mapper(layer, config) for layer in workload.layers]
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds, results = elapsed, run
    return best_seconds, results


def _timed_fused_sweep(workload, config):
    """Best-of-REPS fused cross-layer search (fresh mapper per rep)."""
    best_seconds = float("inf")
    results = None
    for _ in range(REPS):
        mapper = TopNMapper(top_n=TOP_N, batch_eval=True)
        start = time.perf_counter()
        fused, remaining = search_layers_fused(
            mapper, list(workload.layers), config
        )
        elapsed = time.perf_counter() - start
        assert remaining == []
        if elapsed < best_seconds:
            best_seconds = elapsed
            results = [result for _layer, result in fused]
    return best_seconds, results


def test_fused_campaign_speedup_resnet18(resnet18_workload, mid_point):
    config = config_from_point(mid_point)

    batch_seconds, batch_results = _timed_batch_sweep(
        resnet18_workload, config
    )
    fused_seconds, fused_results = _timed_fused_sweep(
        resnet18_workload, config
    )

    # Correctness first: the fusion must be invisible in the results.
    for a, b in zip(batch_results, fused_results):
        assert a.mapping == b.mapping
        assert a.execution == b.execution
        assert a.candidates_evaluated == b.candidates_evaluated
        assert a.feasible_candidates == b.feasible_candidates

    speedup = batch_seconds / fused_seconds
    print(
        f"\nbatch {batch_seconds * 1e3:.1f}ms, "
        f"fused {fused_seconds * 1e3:.1f}ms -> {speedup:.1f}x speedup "
        f"({len(resnet18_workload.layers)} layers, top_n={TOP_N})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fused campaign-step speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x acceptance floor (batch {batch_seconds:.3f}s, "
        f"fused {fused_seconds:.3f}s)"
    )
