"""CI benchmark: fused cross-layer campaign step vs the per-layer batch path.

Runs one campaign step (a cold full-model TopNMapper search over every
ResNet18 layer) through the per-layer batch kernels (the PR 2 fast
path) and through the fused cross-layer block (``REPRO_FUSED_EVAL``),
checks the results are bit-identical, and writes the timings to a JSON
artifact so CI runs can be compared over time::

    PYTHONPATH=src python benchmarks/bench_fused_campaign.py \
        --out BENCH_fused.json

The acceptance floor (fused >= 3x over the per-layer batch path) is
enforced here *and* in :mod:`benchmarks.test_perf_fused_campaign`.

A chaos case rides along (``--chaos``, on by default): the campaign's
mapping cache is backed by a cross-process cache plane, one plane
segment is corrupted "mid-campaign" (between two campaign processes),
and the second process must quarantine the bad segment — warning, not
crashing — and recompute bit-identical results.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
import warnings

from repro.arch import build_edge_design_space, config_from_point
from repro.cost.evaluator import CostEvaluator
from repro.cost.fused import search_layers_fused
from repro.mapping.mapper import TopNMapper
from repro.perf.cache_plane import CachePlane
from repro.perf.mapping_cache import MappingCache
from repro.workloads import load_workload

MODEL = "resnet18"
TOP_N = 150
REPS = 3
MIN_SPEEDUP = 3.0


def _mid_point():
    point = build_edge_design_space().minimum_point()
    point.update(
        pes=1024,
        l1_bytes=256,
        l2_kb=512,
        offchip_bw_mbps=8192,
        noc_datawidth=128,
    )
    for op in ("I", "W", "O", "PSUM"):
        point[f"phys_unicast_{op}"] = 16
        point[f"virt_unicast_{op}"] = 64
    return point


def _batch_sweep(workload, config):
    """Best-of-REPS per-layer batch-kernel search (the PR 2 path)."""
    best_seconds = float("inf")
    results = None
    for _ in range(REPS):
        mapper = TopNMapper(top_n=TOP_N, batch_eval=True)
        start = time.perf_counter()
        run = [mapper(layer, config) for layer in workload.layers]
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds, results = elapsed, run
    return best_seconds, results


def _fused_sweep(workload, config):
    """Best-of-REPS fused cross-layer search (one SoA block per step)."""
    best_seconds = float("inf")
    results = None
    stats = None
    for _ in range(REPS):
        mapper = TopNMapper(top_n=TOP_N, batch_eval=True)
        start = time.perf_counter()
        fused, remaining = search_layers_fused(
            mapper, list(workload.layers), config, stats=mapper.batch_stats
        )
        elapsed = time.perf_counter() - start
        if remaining:
            raise RuntimeError(
                f"fused path left {len(remaining)} layers unhandled"
            )
        if elapsed < best_seconds:
            best_seconds = elapsed
            results = [result for _layer, result in fused]
            stats = mapper.batch_stats
    return best_seconds, results, stats


def _identical(a, b):
    return (
        a.mapping == b.mapping
        and a.execution == b.execution
        and a.candidates_evaluated == b.candidates_evaluated
        and a.feasible_candidates == b.feasible_candidates
    )


def _plane_chaos(workload, point) -> dict:
    """Corrupt a cache-plane segment between two campaign processes; the
    second must quarantine it and still match the first bit-for-bit."""
    with tempfile.TemporaryDirectory(prefix="fused-plane-chaos-") as plane_dir:
        first = CostEvaluator(
            workload,
            TopNMapper(top_n=TOP_N, batch_eval=True),
            mapping_cache=MappingCache(plane=CachePlane(plane_dir)),
            fused_eval=True,
        )
        reference = first.evaluate(point)
        first.close()

        segments = [
            name for name in os.listdir(plane_dir) if name.endswith(".seg")
        ]
        for name in segments:
            path = os.path.join(plane_dir, name)
            with open(path, "r+b") as handle:
                handle.seek(os.path.getsize(path) // 2)
                handle.write(b"\xde\xad\xbe\xef")

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = CostEvaluator(
                workload,
                TopNMapper(top_n=TOP_N, batch_eval=True),
                mapping_cache=MappingCache(plane=CachePlane(plane_dir)),
                fused_eval=True,
            )
            recomputed = second.evaluate(point)
        quarantine_warnings = [
            str(w.message)
            for w in caught
            if "cache-plane segment is corrupt" in str(w.message)
        ]
        plane_stats = second.mapping_cache.plane.stats
        second.close()
        return {
            "segments_corrupted": len(segments),
            "segments_quarantined": plane_stats.segments_quarantined,
            "quarantine_warned": bool(quarantine_warnings),
            "results_identical": recomputed.costs == reference.costs
            and all(
                reference.layer_results[name].latency
                == recomputed.layer_results[name].latency
                for name in reference.layer_results
            ),
        }


def run(chaos: bool = True, chaos_only: bool = False) -> dict:
    workload = load_workload(MODEL)
    point = _mid_point()
    config = config_from_point(point)

    if chaos_only:
        return {
            "benchmark": "fused_campaign_plane_chaos",
            "model": MODEL,
            "top_n": TOP_N,
            "layers": len(workload.layers),
            "python": platform.python_version(),
            "plane_chaos": _plane_chaos(workload, point),
        }

    batch_seconds, batch_results = _batch_sweep(workload, config)
    fused_seconds, fused_results, fused_stats = _fused_sweep(workload, config)
    identical = all(
        _identical(a, b) for a, b in zip(batch_results, fused_results)
    )

    record = {
        "benchmark": "fused_campaign",
        "model": MODEL,
        "top_n": TOP_N,
        "layers": len(workload.layers),
        "reps": REPS,
        "python": platform.python_version(),
        "candidates": fused_stats.fused_candidates,
        "batch_seconds": round(batch_seconds, 4),
        "fused_seconds": round(fused_seconds, 4),
        "speedup": round(batch_seconds / fused_seconds, 2),
        "min_speedup": MIN_SPEEDUP,
        "fused_blocks": fused_stats.fused_blocks,
        "fused_fallbacks": fused_stats.fused_fallbacks,
        "results_identical": identical,
    }
    if chaos:
        record["plane_chaos"] = _plane_chaos(workload, point)
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="BENCH_fused.json",
        help="JSON artifact path (default: %(default)s)",
    )
    parser.add_argument(
        "--no-chaos",
        action="store_true",
        help="skip the cache-plane corruption case",
    )
    parser.add_argument(
        "--chaos-only",
        action="store_true",
        help="run only the cache-plane corruption case (no timing floor)",
    )
    args = parser.parse_args()
    record = run(chaos=not args.no_chaos, chaos_only=args.chaos_only)
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    chaos = record.get("plane_chaos")
    if args.chaos_only:
        print(
            f"{record['model']}: plane chaos: quarantined="
            f"{chaos['segments_quarantined']}, identical="
            f"{chaos['results_identical']} -> {args.out}"
        )
        return (
            0
            if chaos["quarantine_warned"] and chaos["results_identical"]
            else 1
        )
    print(
        f"{record['model']}: batch {record['batch_seconds']}s, "
        f"fused {record['fused_seconds']}s ({record['speedup']}x, "
        f"floor {MIN_SPEEDUP}x), results identical: "
        f"{record['results_identical']}"
        + (
            f"; plane chaos: quarantined="
            f"{chaos['segments_quarantined']}, identical="
            f"{chaos['results_identical']}"
            if chaos
            else ""
        )
        + f" -> {args.out}"
    )
    if not record["results_identical"]:
        return 1
    if chaos and not (
        chaos["quarantine_warned"] and chaos["results_identical"]
    ):
        return 1
    return 0 if record["speedup"] >= MIN_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())
