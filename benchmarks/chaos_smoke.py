"""CI chaos smoke test: a campaign under injected faults matches the
fault-free serial reference.

Drives the resilience story end-to-end through the CLI::

    PYTHONPATH=src python benchmarks/chaos_smoke.py --out BENCH_chaos.json

1. Run a fault-free serial reference campaign (``--save``, no
   ``REPRO_JOBS``, no ``REPRO_FAULT_INJECT``).
2. Run the same campaign with deterministic faults injected
   (``REPRO_FAULT_INJECT``, default a 5% crash rate at the evaluate
   site) and a parallel mapper pool (``REPRO_JOBS=4``), tracing to a
   journal.
3. Assert the chaos run completed, that worker supervision retried the
   injected faults back to health (same incumbent point and costs, same
   trial trajectory), and write a quarantine report listing every
   ``CandidateFailed`` event the journal recorded.

Faults are hash-based and keyed on (seed, site, key, attempt), so a
retry re-rolls the decision and the smoke is fully reproducible: the
same spec either always passes or always fails on a given campaign.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_FAULTS = "crash:evaluate:0.05:seed=7"


def _env(extra=None, drop=()):
    env = dict(os.environ)
    for name in (
        "REPRO_FAULT_INJECT",
        "REPRO_JOBS",
        "REPRO_TASK_TIMEOUT",
        "REPRO_MAX_RETRIES",
        "REPRO_RETRY_BACKOFF",
        "REPRO_MAX_FAILURE_RATE",
        *drop,
    ):
        env.pop(name, None)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env.update(extra or {})
    return env


def _repro(args, env):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
    )


def _load_result(path):
    with open(path) as handle:
        data = json.load(handle)
    return {
        "points": [t["point"] for t in data["trials"]],
        "costs": [t["costs"] for t in data["trials"]],
        "notes": [t.get("note", "") for t in data["trials"]],
        "best_index": data["best_index"],
        "evaluations": data["evaluations"],
    }


def _read_journal_records(journal: Path):
    records = []
    if journal.exists():
        for line in journal.read_text().splitlines():
            if line:
                records.append(json.loads(line))
    return records


def run(
    model: str,
    iterations: int,
    faults: str,
    jobs: int,
    workdir: Path,
    task_timeout: float = 0.0,
) -> dict:
    reference_json = workdir / "reference.json"
    chaos_json = workdir / "chaos.json"
    journal = workdir / "chaos.jsonl"
    explore = ["explore", model, "--iterations", str(iterations)]

    reference = _repro(
        [*explore, "--save", str(reference_json)], _env()
    )
    if reference.returncode not in (0, 1):
        raise RuntimeError(f"reference run failed:\n{reference.stderr}")

    extra = {
        "REPRO_FAULT_INJECT": faults,
        "REPRO_JOBS": str(jobs),
        "REPRO_RETRY_BACKOFF": "0.01",
    }
    if task_timeout:
        extra["REPRO_TASK_TIMEOUT"] = str(task_timeout)
    chaos_env = _env(extra=extra)
    chaos = _repro(
        [*explore, "--save", str(chaos_json), "--trace", str(journal)],
        chaos_env,
    )
    chaos_completed = chaos.returncode in (0, 1)
    if not chaos_completed:
        # Keep going: the record below reports the failure for triage.
        sys.stderr.write(chaos.stderr)

    failures = [
        r["data"]
        for r in _read_journal_records(journal)
        if r.get("kind") == "CandidateFailed"
    ]
    record = {
        "benchmark": "chaos_smoke",
        "model": model,
        "iterations": iterations,
        "python": platform.python_version(),
        "faults": faults,
        "jobs": jobs,
        "task_timeout": task_timeout or None,
        "chaos_completed": chaos_completed,
        "chaos_returncode": chaos.returncode,
        "candidate_failures": len(failures),
        "quarantined": [
            {
                "point": f.get("point"),
                "error": f.get("error"),
                "message": f.get("message"),
                "attempts": f.get("attempts"),
            }
            for f in failures
        ],
    }
    if chaos_completed:
        ref = _load_result(reference_json)
        res = _load_result(chaos_json)
        best_ref = ref["points"][ref["best_index"]]
        best_res = res["points"][res["best_index"]]
        record.update(
            {
                "quarantined_trials": sum(
                    1 for note in res["notes"] if "quarantined" in note
                ),
                "same_best_point": best_ref == best_res,
                "same_best_costs": ref["costs"][ref["best_index"]]
                == res["costs"][res["best_index"]],
                "same_trials": ref["points"] == res["points"]
                and ref["costs"] == res["costs"],
                "same_evaluations": ref["evaluations"]
                == res["evaluations"],
            }
        )
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet18")
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument(
        "--faults",
        default=DEFAULT_FAULTS,
        help="REPRO_FAULT_INJECT spec for the chaos run "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="REPRO_JOBS for the chaos run"
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=0.0,
        help="REPRO_TASK_TIMEOUT for the chaos run (0 = no timeout); "
        "set this below a hang fault's for= duration to exercise the "
        "worker-timeout path",
    )
    parser.add_argument(
        "--out",
        default="BENCH_chaos.json",
        help="quarantine-report artifact path (default: %(default)s)",
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        record = run(
            args.model,
            args.iterations,
            args.faults,
            args.jobs,
            Path(tmp),
            task_timeout=args.task_timeout,
        )
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    ok = record["chaos_completed"] and record.get("same_best_point", False)
    print(
        f"{record['model']} under {record['faults']!r}: "
        f"completed={record['chaos_completed']}, "
        f"failures={record['candidate_failures']}, "
        f"same incumbent: {record.get('same_best_point')} -> {args.out}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
