"""Shared benchmark fixtures.

Budgets default to laptop-friendly values so the full suite regenerates
every table and figure in minutes; set ``REPRO_BENCH_SCALE`` (e.g. 10 or
40) to approach the paper's 2500-iteration static budgets.  The comparison
matrix (technique x model) is executed once per session and shared by the
Fig. 9/10/11/12 and Table 2/3 benchmarks, mirroring how the paper derives
those results from the same runs.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import ComparisonRunner
from repro.experiments.setup import bench_scale


def _scaled(value: int) -> int:
    return max(4, int(value * bench_scale()))


@pytest.fixture(scope="session")
def comparison_runner() -> ComparisonRunner:
    """The shared technique x model comparison runner."""
    return ComparisonRunner(
        iterations=_scaled(60),
        top_n=_scaled(60),
        random_mapping_trials=_scaled(30),
    )


@pytest.fixture(scope="session")
def resnet18_workload():
    from repro.workloads import load_workload

    return load_workload("resnet18")


@pytest.fixture(scope="session")
def mid_point():
    """The mid-range Table 1 design point (same as the unit-test fixture)."""
    from repro.arch import build_edge_design_space

    point = build_edge_design_space().minimum_point()
    point.update(
        pes=1024,
        l1_bytes=256,
        l2_kb=512,
        offchip_bw_mbps=8192,
        noc_datawidth=128,
    )
    for op in ("I", "W", "O", "PSUM"):
        point[f"phys_unicast_{op}"] = 16
        point[f"virt_unicast_{op}"] = 64
    return point


@pytest.fixture(scope="session")
def bench_models() -> list:
    """Models covered by the comparison benchmarks.

    All 11 by default; ``REPRO_BENCH_MODELS=resnet18,bert`` restricts the
    set for quick runs.
    """
    env = os.environ.get("REPRO_BENCH_MODELS")
    if env:
        return [m.strip() for m in env.split(",") if m.strip()]
    from repro.workloads.registry import MODEL_NAMES

    return list(MODEL_NAMES)
